//! In-place mutation of partitioned fragments — the graph-side substrate
//! of the dynamic-graph delta subsystem (`aap-delta`).
//!
//! A batch of graph changes arrives as a [`PartitionEdit`]: per-fragment
//! edge inserts/removes/weight updates plus vertex additions and
//! isolations, already resolved to the fragment that stores each edge
//! (the *owner of the source* under edge-cut). [`apply_partition_edit`]
//! patches the touched fragments in place:
//!
//! * the local CSR adjacency is re-packed from the surviving + inserted
//!   edges (cost `O(|Fi|)` per **touched** fragment, nothing global);
//! * mirrors are re-derived from the new cut edges; mirror gains/losses
//!   at one fragment become holder updates at the owner, keeping the
//!   routing symmetry invariant (`v` mirrored at `Fj` ⟺ `Fj ∈
//!   holders(v)` at the owner);
//! * border sets `Fi.I` / `Fi.O'` are recomputed from the patched
//!   structure;
//! * dense [`crate::RoutingTable`]s are rebuilt **only** for fragments
//!   whose structure changed or whose peers renumbered (a fragment's
//!   table stores destination-local ids, so a peer that gained or lost
//!   locals invalidates the slots pointing at it);
//! * reusable [`EditBuffers`] pool the transient sets, so streaming
//!   many small batches does not re-allocate the lookup structures.
//!
//! Vertex *removal* keeps the dense global id space intact: the vertex
//! stays owned but loses every incident edge (an isolated id). This is
//! what keeps `Assemble` output vectors stable across deltas.
//!
//! Retained per-vertex algorithm state is carried across a mutation by a
//! [`StateRemap`] (old local id → new local id), one per fragment; warm
//! incremental evaluation (`aap-core`'s `WarmStart`) uses it to migrate
//! status variables instead of recomputing them.

use crate::fragment::Fragment;
use crate::partition::routing_table_for;
use crate::{FragId, FxHashMap, FxHashSet, Graph, LocalId, VertexId};
use aap_trace::{cat, pid, Args, Tracer};

/// Maps one fragment's local ids across a structural mutation.
///
/// `map(old) == None` means the old local vanished (a dropped mirror);
/// new locals (fresh mirrors or added vertices) have no preimage and
/// must be initialised by the consumer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StateRemap {
    /// Old local -> new local; `LocalId::MAX` = dropped. Empty when
    /// `identity` (the common untouched-fragment case keeps no table).
    old_to_new: Vec<LocalId>,
    new_local_count: usize,
    identity: bool,
}

impl StateRemap {
    /// The identity remap over `n` locals (fragment untouched).
    pub fn identity(n: usize) -> Self {
        StateRemap { old_to_new: Vec::new(), new_local_count: n, identity: true }
    }

    /// Build from an explicit old→new table (`LocalId::MAX` = dropped).
    pub fn from_table(old_to_new: Vec<LocalId>, new_local_count: usize) -> Self {
        let identity = old_to_new.len() == new_local_count
            && old_to_new.iter().enumerate().all(|(i, &l)| l as usize == i);
        if identity {
            StateRemap::identity(new_local_count)
        } else {
            StateRemap { old_to_new, new_local_count, identity: false }
        }
    }

    /// True if the fragment's local id space is unchanged.
    #[inline]
    pub fn is_identity(&self) -> bool {
        self.identity
    }

    /// Locals before the mutation.
    pub fn old_local_count(&self) -> usize {
        if self.identity {
            self.new_local_count
        } else {
            self.old_to_new.len()
        }
    }

    /// Locals after the mutation.
    pub fn new_local_count(&self) -> usize {
        self.new_local_count
    }

    /// New local id of old local `old`, if it survived.
    #[inline]
    pub fn map(&self, old: LocalId) -> Option<LocalId> {
        if self.identity {
            return Some(old);
        }
        match self.old_to_new[old as usize] {
            LocalId::MAX => None,
            l => Some(l),
        }
    }

    /// Migrate a per-local state vector: surviving locals keep their
    /// value, fresh locals get `default`, dropped values are discarded.
    pub fn map_vec<T: Clone>(&self, mut old: Vec<T>, default: T) -> Vec<T> {
        if self.identity {
            debug_assert_eq!(old.len(), self.new_local_count);
            return old;
        }
        let mut out = vec![default; self.new_local_count];
        for (o, v) in old.drain(..).enumerate() {
            if let Some(n) = self.map(o as LocalId) {
                out[n as usize] = v;
            }
        }
        out
    }
}

/// Direction of one weight overwrite against the stored value — the
/// single classification every layer (in-place apply, global apply,
/// pre-apply strategy resolution) must agree on, so the strategy chosen
/// for a batch and the summary recorded for it can never drift.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WeightChange {
    /// The new weight is strictly smaller (monotone-safe).
    Decreased,
    /// The new weight equals the stored one (a no-op).
    Unchanged,
    /// The new weight is strictly larger **or incomparable** under
    /// `PartialOrd` — either way not monotone-safe.
    Increased,
}

/// Classify a weight overwrite of one stored copy.
pub fn weight_change<E: PartialOrd>(new: &E, old: &E) -> WeightChange {
    match new.partial_cmp(old) {
        Some(std::cmp::Ordering::Less) => WeightChange::Decreased,
        Some(std::cmp::Ordering::Equal) => WeightChange::Unchanged,
        _ => WeightChange::Increased,
    }
}

/// Whether a fragment set stores a directed graph, probed from the
/// first non-empty fragment (an all-empty set defaults to directed —
/// the conservative answer for every caller).
pub fn stored_directed<V, E>(frags: &[&Fragment<V, E>]) -> bool {
    frags
        .iter()
        .find(|f| f.local_count() > 0)
        .map(|f| f.local_graph().is_directed())
        .unwrap_or(true)
}

/// Shape of one delta batch, for deciding how warm incremental
/// evaluation stays exact (monotone-contracting programs handle
/// additions / weight decreases by monotonicity alone; removals and
/// weight increases need an affected-region invalidation plan; see
/// `WarmStart::delta_strategy`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeltaSummary {
    /// Vertices added (logical count).
    pub vertices_added: u64,
    /// Vertices isolated (removal keeps the dense id).
    pub vertices_removed: u64,
    /// Logical edges added.
    pub edges_added: u64,
    /// Logical edges removed.
    pub edges_removed: u64,
    /// Weight updates that decreased a stored weight.
    pub weights_decreased: u64,
    /// Weight updates that increased a stored weight (or were
    /// incomparable under `PartialOrd`).
    pub weights_increased: u64,
}

impl DeltaSummary {
    /// True if the delta can only *shrink* path costs / merge components:
    /// no removals and no weight increases. Monotone-decreasing programs
    /// (`min`-aggregated SSSP, CC) re-evaluate such deltas exactly from
    /// the affected region.
    pub fn is_monotone_decreasing(&self) -> bool {
        self.vertices_removed == 0 && self.edges_removed == 0 && self.weights_increased == 0
    }

    /// True if nothing changed.
    pub fn is_empty(&self) -> bool {
        *self == DeltaSummary::default()
    }
}

/// Edits destined for one fragment, in **global** id space. Edge entries
/// must be *stored* directed edges whose source is owned by the fragment
/// (undirected logical edges appear twice, once per stored direction, at
/// the respective source owners).
#[derive(Debug, Clone)]
pub struct FragmentEdit<V, E> {
    /// New vertices owned here (globally fresh ids).
    pub add_owned: Vec<(VertexId, V)>,
    /// Stored edges to insert.
    pub insert_edges: Vec<(VertexId, VertexId, E)>,
    /// Stored edges to remove — drops **all** parallel `(u, v)` copies.
    pub remove_edges: Vec<(VertexId, VertexId)>,
    /// Weight overwrites, applied to every parallel `(u, v)` copy.
    pub set_weights: Vec<(VertexId, VertexId, E)>,
}

impl<V, E> Default for FragmentEdit<V, E> {
    fn default() -> Self {
        FragmentEdit {
            add_owned: Vec::new(),
            insert_edges: Vec::new(),
            remove_edges: Vec::new(),
            set_weights: Vec::new(),
        }
    }
}

impl<V, E> FragmentEdit<V, E> {
    /// True if this fragment has no direct edits.
    pub fn is_empty(&self) -> bool {
        self.add_owned.is_empty()
            && self.insert_edges.is_empty()
            && self.remove_edges.is_empty()
            && self.set_weights.is_empty()
    }
}

/// A delta batch resolved against an edge-cut partition: per-fragment
/// edits plus the cross-fragment context the patch needs.
#[derive(Debug, Clone)]
pub struct PartitionEdit<V, E> {
    /// One edit per fragment (`frags[i]` applies to fragment `i`).
    pub frags: Vec<FragmentEdit<V, E>>,
    /// Vertices to isolate: every incident edge is dropped, the dense id
    /// survives as an edgeless owned vertex.
    pub removed_vertices: FxHashSet<VertexId>,
    /// Owner fragment of every vertex mentioned anywhere in the edit
    /// (existing or newly added).
    pub owners: FxHashMap<VertexId, FragId>,
    /// Fragments whose core (vertices/edges) must be re-derived. Must
    /// cover every fragment with a non-empty edit, plus the owner and all
    /// mirror holders of every removed vertex.
    pub touched: Vec<bool>,
}

/// Result of [`apply_partition_edit`]: everything a warm-start engine run
/// needs to pick up from retained state.
#[derive(Debug, Clone)]
pub struct AppliedEdit {
    /// Per-fragment local-id migration for retained state.
    pub remaps: Vec<StateRemap>,
    /// Per-fragment delta-affected vertices (new local ids, sorted):
    /// endpoints of edited edges, vertices new to the fragment, and owned
    /// vertices whose holder set grew. These seed the first warm round.
    pub seeds: Vec<Vec<LocalId>>,
    /// Weight updates that decreased a stored weight.
    pub weights_decreased: u64,
    /// Weight updates that increased a stored weight (or incomparable).
    pub weights_increased: u64,
    /// Per-fragment: whether the fragment's *persisted* bytes changed —
    /// its core was repacked (or, on the weight-only path, it held
    /// patched copies). Routing-only rebuilds are excluded: routing
    /// tables are derivable and never persisted (`aap-snapshot` loaders
    /// re-derive them). This is the dirty set differential checkpoints
    /// accumulate.
    pub changed: Vec<bool>,
}

/// Reusable buffers for [`apply_partition_edit`] — the delta-side analog
/// of `aap-core`'s pooled `Scratch`: lookup sets keep their capacity
/// across batches, so streaming many small deltas performs no
/// steady-state re-allocation of the transient structures. The pool
/// holds one buffer set per apply worker; [`apply_partition_edit_threads`]
/// splits it so each scoped thread repacks with a private set.
#[derive(Debug, Default)]
pub struct EditBuffers {
    workers: Vec<WorkerBufs>,
}

impl EditBuffers {
    /// At least `n` per-worker buffer sets; the pool grows on first use
    /// and retains capacity afterwards.
    fn split(&mut self, n: usize) -> &mut [WorkerBufs] {
        if self.workers.len() < n {
            self.workers.resize_with(n, WorkerBufs::default);
        }
        &mut self.workers[..n]
    }
}

/// One apply worker's pooled transient sets.
#[derive(Debug, Default)]
struct WorkerBufs {
    removed_pairs: FxHashSet<(VertexId, VertexId)>,
    owned_set: FxHashSet<VertexId>,
    seed_globals: FxHashSet<VertexId>,
    holder_removals: FxHashSet<(VertexId, FragId)>,
}

struct Core<V, E> {
    owned: Vec<(VertexId, V)>,
    edges: Vec<(VertexId, VertexId, E)>,
    mirrors: Vec<VertexId>,
    mirror_owner: Vec<FragId>,
    mirror_data: Vec<V>,
}

/// A mirror-set diff produced by phase 1, delivered to the owner in
/// phase 2: vertex `.0`'s mirror at fragment `.1` was gained (`true`) or
/// lost (`false`).
type HolderEvent = (VertexId, FragId, bool);

/// Phase-1 output for one touched fragment: the derived core, its
/// owner-routed holder events, and the weight-direction tallies.
type DerivedCore<V, E> = (Core<V, E>, Vec<(FragId, HolderEvent)>, u64, u64);

/// A phase-2 work item: fragment index, its disjoint `&mut`, and the
/// core derived for it in phase 1 (`None` for holder-events-only
/// rebuilds).
type CommitTask<'a, V, E> = (usize, &'a mut Fragment<V, E>, Option<Core<V, E>>);

/// Phase 1 for one touched fragment: derive the new core (owned list,
/// stored edges, mirrors) in global id space and diff the mirror set
/// against the old one, emitting `(owner, event)` pairs the orchestrator
/// routes to the owners. Reads fragments only (`view`), so touched
/// fragments fan out across scoped threads.
fn derive_core<V, E>(
    i: usize,
    view: &[&Fragment<V, E>],
    edit: &PartitionEdit<V, E>,
    bufs: &mut WorkerBufs,
) -> DerivedCore<V, E>
where
    V: Clone,
    E: Clone + PartialOrd,
{
    let fe = &edit.frags[i];
    let f: &Fragment<V, E> = view[i];
    let mut weights_decreased = 0u64;
    let mut weights_increased = 0u64;
    let mut events: Vec<(FragId, HolderEvent)> = Vec::new();

    // New owned list (sorted by global id; removals keep the id).
    let mut owned: Vec<(VertexId, V)> = f
        .owned_vertices()
        .map(|l| (f.global(l), f.node(l).clone()))
        .chain(fe.add_owned.iter().cloned())
        .collect();
    owned.sort_unstable_by_key(|&(g, _)| g);
    debug_assert!(owned.windows(2).all(|w| w[0].0 < w[1].0), "duplicate owned vertex");

    bufs.owned_set.clear();
    bufs.owned_set.extend(owned.iter().map(|&(g, _)| g));

    bufs.removed_pairs.clear();
    bufs.removed_pairs.extend(fe.remove_edges.iter().copied());
    let setw: FxHashMap<(VertexId, VertexId), &E> =
        fe.set_weights.iter().map(|(u, v, w)| ((*u, *v), w)).collect();

    // Surviving + updated + inserted stored edges.
    let mut edges: Vec<(VertexId, VertexId, E)> =
        Vec::with_capacity(f.edge_count() + fe.insert_edges.len());
    for u in f.owned_vertices() {
        let gu = f.global(u);
        if edit.removed_vertices.contains(&gu) {
            continue;
        }
        for (t, d) in f.edges(u) {
            let gt = f.global(t);
            if edit.removed_vertices.contains(&gt) || bufs.removed_pairs.contains(&(gu, gt)) {
                continue;
            }
            if let Some(w) = setw.get(&(gu, gt)) {
                match weight_change(*w, d) {
                    WeightChange::Decreased => weights_decreased += 1,
                    WeightChange::Unchanged => {}
                    WeightChange::Increased => weights_increased += 1,
                }
                edges.push((gu, gt, (*w).clone()));
            } else {
                edges.push((gu, gt, d.clone()));
            }
        }
    }
    for (u, v, d) in &fe.insert_edges {
        assert!(bufs.owned_set.contains(u), "inserted edge ({u}, {v}) not owned at frag {i}");
        assert!(
            !edit.removed_vertices.contains(u) && !edit.removed_vertices.contains(v),
            "inserted edge ({u}, {v}) touches a removed vertex"
        );
        edges.push((*u, *v, d.clone()));
    }
    edges.sort_unstable_by_key(|&(u, v, _)| ((u as u64) << 32) | v as u64);

    // New mirror set + owners.
    let mut mirrors: Vec<VertexId> =
        edges.iter().map(|&(_, t, _)| t).filter(|t| !bufs.owned_set.contains(t)).collect();
    mirrors.sort_unstable();
    mirrors.dedup();
    let owner_of = |g: VertexId| -> FragId {
        if let Some(l) = f.local(g) {
            if !f.is_owned(l) {
                return f.owner(l);
            }
        }
        *edit.owners.get(&g).unwrap_or_else(|| panic!("owner of vertex {g} not resolved"))
    };
    let mirror_owner: Vec<FragId> = mirrors.iter().map(|&g| owner_of(g)).collect();
    // Node data for mirrors: carry the old copy; fresh mirrors clone
    // from the owner fragment (or, for vertices added in this very
    // batch, from the owner's pending `add_owned` entry).
    let mirror_data: Vec<V> = mirrors
        .iter()
        .zip(&mirror_owner)
        .map(|(&g, &o)| {
            if let Some(l) = f.local(g) {
                return f.node(l).clone();
            }
            if let Some(l) = view[o as usize].local(g) {
                return view[o as usize].node(l).clone();
            }
            edit.frags[o as usize]
                .add_owned
                .iter()
                .find(|&&(v, _)| v == g)
                .map(|(_, d)| d.clone())
                .unwrap_or_else(|| panic!("no node data for new mirror {g}"))
        })
        .collect();

    // Mirror diff -> holder events at the owners.
    let old_mirrors = &f.globals()[f.owned_count()..];
    let (mut a, mut b) = (0usize, 0usize);
    while a < old_mirrors.len() || b < mirrors.len() {
        match (old_mirrors.get(a), mirrors.get(b)) {
            (Some(&og), Some(&ng)) if og == ng => {
                a += 1;
                b += 1;
            }
            (Some(&og), Some(&ng)) if og < ng => {
                events.push((owner_of(og), (og, i as FragId, false)));
                a += 1;
            }
            (Some(_), Some(&ng)) => {
                events.push((mirror_owner[b], (ng, i as FragId, true)));
                b += 1;
            }
            (Some(&og), None) => {
                events.push((owner_of(og), (og, i as FragId, false)));
                a += 1;
            }
            (None, Some(&ng)) => {
                events.push((mirror_owner[b], (ng, i as FragId, true)));
                b += 1;
            }
            (None, None) => unreachable!(),
        }
    }

    (
        Core { owned, edges, mirrors, mirror_owner, mirror_data },
        events,
        weights_decreased,
        weights_increased,
    )
}

/// Phase 2 for one fragment that must change: rebuild from its derived
/// core or, when only the holder lists moved, splice the border
/// structure without renumbering. Touches `frag` alone, so changed
/// fragments fan out across scoped threads. Returns the state remap and
/// the sorted seed set (new local ids).
fn commit_fragment<V, E>(
    frag: &mut Fragment<V, E>,
    fe: &FragmentEdit<V, E>,
    core: Option<Core<V, E>>,
    events: &[HolderEvent],
    bufs: &mut WorkerBufs,
) -> (StateRemap, Vec<LocalId>)
where
    V: Clone,
    E: Clone + PartialOrd,
{
    let mut seeds: Vec<LocalId> = Vec::new();

    // Holder pairs (vertex, holder fragment), post-events, sorted.
    let mut pairs: Vec<(VertexId, FragId)> = frag
        .owned_vertices()
        .flat_map(|l| {
            let g = frag.global(l);
            frag.mirror_holders(l).iter().map(move |&h| (g, h))
        })
        .collect();
    bufs.holder_removals.clear();
    for &(v, h, add) in events {
        if add {
            pairs.push((v, h));
        } else {
            bufs.holder_removals.insert((v, h));
        }
    }
    if !bufs.holder_removals.is_empty() {
        // One linear pass, not one retain() per event — a batch that
        // prunes a hub's cut edges would otherwise go quadratic.
        pairs.retain(|p| !bufs.holder_removals.contains(p));
    }
    pairs.sort_unstable();
    pairs.dedup();

    let remap;
    match core {
        None => {
            // Border-only splice: the local id space is unchanged.
            let owned_n = frag.owned_count();
            let mut holder_offsets = vec![0u32; owned_n + 1];
            let mut holders = Vec::with_capacity(pairs.len());
            let mut inner_in = Vec::new();
            for &(v, h) in &pairs {
                let l = frag.local(v).expect("holder pair names an owned vertex");
                debug_assert!(frag.is_owned(l));
                holder_offsets[l as usize + 1] += 1;
                holders.push(h);
            }
            for l in 1..=owned_n {
                holder_offsets[l] += holder_offsets[l - 1];
            }
            for l in 0..owned_n {
                if holder_offsets[l + 1] > holder_offsets[l] {
                    inner_in.push(l as LocalId);
                }
            }
            remap = StateRemap::identity(frag.local_count());
            // Owned vertices that gained a holder must re-announce
            // their value (the new mirror starts uninitialised).
            for &(v, _, add) in events {
                if add {
                    seeds.push(frag.local(v).expect("owned here"));
                }
            }
            frag.replace_borders(inner_in, holder_offsets, holders);
        }
        Some(core) => {
            let old_globals = frag.globals().to_vec();
            let id = frag.id();
            let num_frags = frag.num_frags();
            let directed = frag.local_graph().is_directed();

            let Core { owned, edges, mirrors, mirror_owner, mirror_data } = core;
            let owned_n = owned.len();
            let n_local = owned_n + mirrors.len();
            let mut g2l: FxHashMap<VertexId, LocalId> = FxHashMap::default();
            g2l.reserve(n_local);
            let mut globals = Vec::with_capacity(n_local);
            let mut node_data: Vec<V> = Vec::with_capacity(n_local);
            for (g, d) in owned {
                g2l.insert(g, globals.len() as LocalId);
                globals.push(g);
                node_data.push(d);
            }
            for (&g, d) in mirrors.iter().zip(mirror_data) {
                g2l.insert(g, globals.len() as LocalId);
                globals.push(g);
                node_data.push(d);
            }

            // Local CSR over the new id space.
            let mut offsets = vec![0usize; n_local + 1];
            for &(u, _, _) in &edges {
                offsets[g2l[&u] as usize + 1] += 1;
            }
            for l in 1..=n_local {
                offsets[l] += offsets[l - 1];
            }
            let mut cursor = offsets.clone();
            let mut targets = vec![0 as LocalId; edges.len()];
            let mut slots: Vec<Option<E>> = vec![None; edges.len()];
            let mut inner_out_set = vec![false; owned_n];
            for (u, v, d) in edges {
                let lu = g2l[&u] as usize;
                let lv = g2l[&v];
                if lv as usize >= owned_n {
                    inner_out_set[lu] = true;
                }
                targets[cursor[lu]] = lv;
                slots[cursor[lu]] = Some(d);
                cursor[lu] += 1;
            }
            let edge_data: Vec<E> =
                slots.into_iter().map(|s| s.expect("every slot filled")).collect();
            let local_graph = Graph::from_parts(directed, node_data, offsets, targets, edge_data);

            let inner_out: Vec<LocalId> = inner_out_set
                .iter()
                .enumerate()
                .filter(|&(_, &b)| b)
                .map(|(l, _)| l as LocalId)
                .collect();
            let mut holder_offsets = vec![0u32; owned_n + 1];
            let mut holders = Vec::with_capacity(pairs.len());
            let mut inner_in = Vec::new();
            for &(v, h) in &pairs {
                let l = g2l[&v];
                debug_assert!((l as usize) < owned_n, "holder pair for non-owned vertex {v}");
                holder_offsets[l as usize + 1] += 1;
                holders.push(h);
            }
            for l in 1..=owned_n {
                holder_offsets[l] += holder_offsets[l - 1];
            }
            for l in 0..owned_n {
                if holder_offsets[l + 1] > holder_offsets[l] {
                    inner_in.push(l as LocalId);
                }
            }

            // Remap + seeds (new local ids).
            let table: Vec<LocalId> =
                old_globals.iter().map(|g| g2l.get(g).copied().unwrap_or(LocalId::MAX)).collect();
            remap = StateRemap::from_table(table, n_local);
            bufs.seed_globals.clear();
            for (u, v, _) in fe.insert_edges.iter().chain(fe.set_weights.iter()) {
                bufs.seed_globals.insert(*u);
                bufs.seed_globals.insert(*v);
            }
            for (u, v) in &fe.remove_edges {
                bufs.seed_globals.insert(*u);
                bufs.seed_globals.insert(*v);
            }
            for (v, _) in &fe.add_owned {
                bufs.seed_globals.insert(*v);
            }
            for &(v, _, add) in events {
                if add {
                    bufs.seed_globals.insert(v);
                }
            }
            // Vertices new to this fragment (fresh mirrors).
            for (&g, &l) in g2l.iter() {
                if frag.local(g).is_none() {
                    seeds.push(l);
                }
            }
            for g in bufs.seed_globals.drain() {
                if let Some(&l) = g2l.get(&g) {
                    seeds.push(l);
                }
            }

            *frag = Fragment::from_parts(
                id,
                num_frags,
                false,
                local_graph,
                globals,
                owned_n,
                inner_in,
                inner_out,
                mirror_owner,
                holder_offsets,
                holders,
            );
        }
    }
    seeds.sort_unstable();
    seeds.dedup();
    (remap, seeds)
}

/// Phase 3 planning: which fragments need their routing table rebuilt —
/// every patched one, plus every peer whose destination list intersects
/// a renumbered fragment (tables store destination-local ids).
fn routing_targets(
    old_dests: &[Vec<FragId>],
    remaps: &[StateRemap],
    mut rebuilt: Vec<bool>,
) -> Vec<bool> {
    for j in 0..rebuilt.len() {
        if !rebuilt[j] && old_dests[j].iter().any(|&d| !remaps[d as usize].is_identity()) {
            rebuilt[j] = true;
        }
    }
    rebuilt
}

/// True when the batch is pure weight overwrites — no structural change
/// anywhere. Such batches keep every id space, border set, mirror set,
/// and routing table bit-for-bit intact, so the apply can patch stored
/// weights in place instead of repacking CSRs.
fn is_weight_only<V, E>(edit: &PartitionEdit<V, E>) -> bool {
    edit.removed_vertices.is_empty()
        && edit.frags.iter().all(|fe| {
            fe.add_owned.is_empty() && fe.insert_edges.is_empty() && fe.remove_edges.is_empty()
        })
}

/// The weight-only fast path: overwrite the stored copies in place.
/// Beyond the returned [`AppliedEdit`] this allocates nothing in steady
/// state (the pooled seen-set retains capacity) — the case a stream of
/// weight updates hits every batch (see `tests/alloc_apply.rs`).
fn apply_weight_only<V, E>(
    frags: &mut [&mut Fragment<V, E>],
    edit: &PartitionEdit<V, E>,
    bufs: &mut EditBuffers,
) -> AppliedEdit
where
    V: Clone,
    E: Clone + PartialOrd,
{
    let m = frags.len();
    let wb = &mut bufs.split(1)[0];
    let mut remaps: Vec<StateRemap> = Vec::with_capacity(m);
    let mut seeds: Vec<Vec<LocalId>> = vec![Vec::new(); m];
    let mut weights_decreased = 0u64;
    let mut weights_increased = 0u64;
    for i in 0..m {
        remaps.push(StateRemap::identity(frags[i].local_count()));
        let fe = &edit.frags[i];
        if !edit.touched[i] {
            assert!(fe.is_empty(), "edited fragment {i} not marked touched");
            continue;
        }
        // The repack path resolves duplicate (u, v) overwrites through a
        // last-entry-wins map; replicate that by walking entries
        // newest-first with a pooled seen-set (`removed_pairs` doubles as
        // the scratch — the weight-only path has no removals).
        wb.removed_pairs.clear();
        for (u, v, w) in fe.set_weights.iter().rev() {
            if !wb.removed_pairs.insert((*u, *v)) {
                continue;
            }
            let (Some(lu), Some(lv)) = (frags[i].local(*u), frags[i].local(*v)) else {
                continue;
            };
            // Patch every stored parallel (u, v) copy, counting the
            // direction of each overwrite exactly like the repack path.
            let (targets, data) = frags[i].adjacency_mut(lu);
            for (t, d) in targets.iter().zip(data.iter_mut()) {
                if *t == lv {
                    match weight_change(w, d) {
                        WeightChange::Decreased => weights_decreased += 1,
                        WeightChange::Unchanged => {}
                        WeightChange::Increased => weights_increased += 1,
                    }
                    *d = w.clone();
                }
            }
        }
        // Seeds: endpoints of every named edge with a local copy here —
        // the same set the repack path derives via `seed_globals`.
        for (u, v, _) in &fe.set_weights {
            if let Some(l) = frags[i].local(*u) {
                seeds[i].push(l);
            }
            if let Some(l) = frags[i].local(*v) {
                seeds[i].push(l);
            }
        }
        seeds[i].sort_unstable();
        seeds[i].dedup();
    }
    let changed = edit.touched.clone();
    AppliedEdit { remaps, seeds, weights_decreased, weights_increased, changed }
}

/// Apply one resolved delta batch to an edge-cut fragment set, in place.
///
/// Fragments not named by the edit (directly or through holder/renumber
/// dependencies) are untouched — no global rebuild happens. Panics on
/// malformed edits (edges at the wrong fragment, unknown owners,
/// non-contiguous new vertex ids); `aap-delta`'s resolver upholds these.
///
/// This is the serial driver; [`apply_partition_edit_threads`] fans the
/// per-fragment phases out over scoped threads with a byte-identical
/// result.
pub fn apply_partition_edit<V, E>(
    frags: &mut [&mut Fragment<V, E>],
    edit: &PartitionEdit<V, E>,
    bufs: &mut EditBuffers,
) -> AppliedEdit
where
    V: Clone,
    E: Clone + PartialOrd,
{
    apply_partition_edit_traced(frags, edit, bufs, &Tracer::default())
}

/// [`apply_partition_edit`] emitting a per-fragment `repack` span (on
/// the delta process track, one tid per fragment) around each
/// fragment commit. The untraced entry point delegates here with a
/// disabled tracer, so the instrumentation costs one branch per
/// repacked fragment when off.
pub fn apply_partition_edit_traced<V, E>(
    frags: &mut [&mut Fragment<V, E>],
    edit: &PartitionEdit<V, E>,
    bufs: &mut EditBuffers,
    tracer: &Tracer,
) -> AppliedEdit
where
    V: Clone,
    E: Clone + PartialOrd,
{
    let m = frags.len();
    assert_eq!(edit.frags.len(), m, "one FragmentEdit per fragment");
    assert_eq!(edit.touched.len(), m);
    assert!(frags.iter().all(|f| !f.is_vertex_cut()), "in-place apply is edge-cut only");

    if is_weight_only(edit) {
        return apply_weight_only(frags, edit, bufs);
    }

    // Old destination lists, for the renumber-dependency pass below.
    let old_dests: Vec<Vec<FragId>> = frags.iter().map(|f| f.routing().dests().to_vec()).collect();

    // Phase 1: derive cores + holder events (see `derive_core`).
    let mut cores: Vec<Option<Core<V, E>>> = (0..m).map(|_| None).collect();
    let mut holder_events: Vec<Vec<HolderEvent>> = vec![Vec::new(); m];
    let mut weights_decreased = 0u64;
    let mut weights_increased = 0u64;
    {
        let wb = &mut bufs.split(1)[0];
        let view: Vec<&Fragment<V, E>> = frags.iter().map(|f| &**f).collect();
        for (i, core_slot) in cores.iter_mut().enumerate() {
            if !edit.touched[i] {
                assert!(edit.frags[i].is_empty(), "edited fragment {i} not marked touched");
                continue;
            }
            let (core, events, wdec, winc) = derive_core(i, &view, edit, wb);
            for (owner, ev) in events {
                holder_events[owner as usize].push(ev);
            }
            weights_decreased += wdec;
            weights_increased += winc;
            *core_slot = Some(core);
        }
    }

    // Phase 2: commit (see `commit_fragment`).
    let mut remaps: Vec<StateRemap> = Vec::with_capacity(m);
    let mut seeds: Vec<Vec<LocalId>> = vec![Vec::new(); m];
    let mut rebuilt = vec![false; m];
    {
        let traced = tracer.enabled();
        let wb = &mut bufs.split(1)[0];
        for i in 0..m {
            if cores[i].is_none() && holder_events[i].is_empty() {
                remaps.push(StateRemap::identity(frags[i].local_count()));
                continue;
            }
            rebuilt[i] = true;
            let core = cores[i].take();
            if traced {
                tracer.begin(
                    pid::DELTA,
                    i as u32,
                    cat::APPLY,
                    "repack",
                    Args::new().with("frag", i).with("locals", frags[i].local_count()),
                );
            }
            let (remap, s) = commit_fragment(frags[i], &edit.frags[i], core, &holder_events[i], wb);
            if traced {
                tracer.end(
                    pid::DELTA,
                    i as u32,
                    cat::APPLY,
                    "repack",
                    Args::new().with("locals", frags[i].local_count()).with("seeds", s.len()),
                );
            }
            remaps.push(remap);
            seeds[i] = s;
        }
    }

    // Phase 3: routing (see `routing_targets`).
    let changed = rebuilt.clone();
    let needs_routing = routing_targets(&old_dests, &remaps, rebuilt);
    {
        let view: Vec<&Fragment<V, E>> = frags.iter().map(|f| &**f).collect();
        let tables: Vec<(usize, crate::RoutingTable)> = needs_routing
            .iter()
            .enumerate()
            .filter(|&(_, &need)| need)
            .map(|(j, _)| (j, routing_table_for(view[j], &|d, g| view[d as usize].local(g))))
            .collect();
        drop(view);
        for (j, t) in tables {
            frags[j].set_routing(t);
        }
    }

    AppliedEdit { remaps, seeds, weights_decreased, weights_increased, changed }
}

/// [`apply_partition_edit`] with the per-fragment work of all three
/// phases fanned out over up to `threads` scoped worker threads: touched
/// fragments derive their cores against a shared read-only view, changed
/// fragments repack behind disjoint `&mut Fragment`s, and routing tables
/// rebuild from the committed view. Each worker patches through its own
/// pooled `WorkerBufs`, and the cross-fragment holder events are
/// merged between phases in ascending fragment order — the one place
/// workers could have raced on ordering — so the result is
/// **byte-identical to the serial path** (the mutate proptests pin
/// this). `threads <= 1`, or a batch touching a single fragment, falls
/// back to the serial driver.
pub fn apply_partition_edit_threads<V, E>(
    frags: &mut [&mut Fragment<V, E>],
    edit: &PartitionEdit<V, E>,
    bufs: &mut EditBuffers,
    threads: usize,
) -> AppliedEdit
where
    V: Clone + Send + Sync,
    E: Clone + PartialOrd + Send + Sync,
{
    apply_partition_edit_threads_traced(frags, edit, bufs, threads, &Tracer::default())
}

/// [`apply_partition_edit_threads`] emitting per-fragment `repack`
/// spans (delta track, tid = fragment id) from whichever worker commits
/// each fragment. Serial fallbacks keep tracing: the `threads <= 1` and
/// single-touched-fragment paths route through
/// [`apply_partition_edit_traced`], so repack spans appear regardless
/// of which driver ends up running.
pub fn apply_partition_edit_threads_traced<V, E>(
    frags: &mut [&mut Fragment<V, E>],
    edit: &PartitionEdit<V, E>,
    bufs: &mut EditBuffers,
    threads: usize,
    tracer: &Tracer,
) -> AppliedEdit
where
    V: Clone + Send + Sync,
    E: Clone + PartialOrd + Send + Sync,
{
    let m = frags.len();
    assert_eq!(edit.frags.len(), m, "one FragmentEdit per fragment");
    assert_eq!(edit.touched.len(), m);
    assert!(frags.iter().all(|f| !f.is_vertex_cut()), "in-place apply is edge-cut only");

    if is_weight_only(edit) {
        // In-place weight patching touches a handful of cache lines per
        // entry; thread fan-out can only lose.
        return apply_weight_only(frags, edit, bufs);
    }
    let touched: Vec<usize> = (0..m).filter(|&i| edit.touched[i]).collect();
    let threads = threads.min(touched.len()).max(1);
    if threads <= 1 {
        return apply_partition_edit_traced(frags, edit, bufs, tracer);
    }
    for i in 0..m {
        if !edit.touched[i] {
            assert!(edit.frags[i].is_empty(), "edited fragment {i} not marked touched");
        }
    }

    let old_dests: Vec<Vec<FragId>> = frags.iter().map(|f| f.routing().dests().to_vec()).collect();

    // Phase 1: core derivation over the shared pre-apply view. Workers
    // take touched fragments round-robin and write disjoint outputs.
    let mut cores: Vec<Option<Core<V, E>>> = (0..m).map(|_| None).collect();
    let mut holder_events: Vec<Vec<HolderEvent>> = vec![Vec::new(); m];
    let mut weights_decreased = 0u64;
    let mut weights_increased = 0u64;
    {
        let view: Vec<&Fragment<V, E>> = frags.iter().map(|f| &**f).collect();
        let view = &view[..];
        let touched = &touched[..];
        let wbufs = bufs.split(threads);
        let mut results: Vec<(usize, DerivedCore<V, E>)> = std::thread::scope(|s| {
            let handles: Vec<_> = wbufs
                .iter_mut()
                .enumerate()
                .map(|(k, wb)| {
                    s.spawn(move || {
                        let mut out = Vec::new();
                        let mut idx = k;
                        while idx < touched.len() {
                            let i = touched[idx];
                            out.push((i, derive_core(i, view, edit, wb)));
                            idx += threads;
                        }
                        out
                    })
                })
                .collect();
            let mut all = Vec::with_capacity(touched.len());
            for h in handles {
                all.extend(h.join().expect("apply worker panicked"));
            }
            all
        });
        // Merge in fragment order so the per-owner holder-event streams
        // match the serial pass exactly.
        results.sort_unstable_by_key(|r| r.0);
        for (i, (core, events, wdec, winc)) in results {
            for (owner, ev) in events {
                holder_events[owner as usize].push(ev);
            }
            weights_decreased += wdec;
            weights_increased += winc;
            cores[i] = Some(core);
        }
    }

    // Phase 2: changed fragments repack behind disjoint `&mut`s, in
    // contiguous chunks; untouched fragments settle to identity inline.
    let mut remaps_opt: Vec<Option<StateRemap>> = (0..m).map(|_| None).collect();
    let mut seeds: Vec<Vec<LocalId>> = vec![Vec::new(); m];
    let mut rebuilt = vec![false; m];
    {
        let mut work: Vec<CommitTask<'_, V, E>> = Vec::new();
        for (i, f) in frags.iter_mut().enumerate() {
            if cores[i].is_none() && holder_events[i].is_empty() {
                remaps_opt[i] = Some(StateRemap::identity(f.local_count()));
            } else {
                rebuilt[i] = true;
                let core = cores[i].take();
                work.push((i, &mut **f, core));
            }
        }
        let events = &holder_events[..];
        let per = work.len().div_ceil(threads).max(1);
        let wbufs = bufs.split(threads);
        let traced = tracer.enabled();
        let results: Vec<(usize, StateRemap, Vec<LocalId>)> = std::thread::scope(|s| {
            let handles: Vec<_> = work
                .chunks_mut(per)
                .zip(wbufs.iter_mut())
                .map(|(chunk, wb)| {
                    s.spawn(move || {
                        chunk
                            .iter_mut()
                            .map(|(i, frag, core)| {
                                if traced {
                                    tracer.begin(
                                        pid::DELTA,
                                        *i as u32,
                                        cat::APPLY,
                                        "repack",
                                        Args::new()
                                            .with("frag", *i)
                                            .with("locals", frag.local_count()),
                                    );
                                }
                                let (remap, sds) = commit_fragment(
                                    &mut **frag,
                                    &edit.frags[*i],
                                    core.take(),
                                    &events[*i],
                                    wb,
                                );
                                if traced {
                                    tracer.end(
                                        pid::DELTA,
                                        *i as u32,
                                        cat::APPLY,
                                        "repack",
                                        Args::new()
                                            .with("locals", frag.local_count())
                                            .with("seeds", sds.len()),
                                    );
                                }
                                (*i, remap, sds)
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles.into_iter().flat_map(|h| h.join().expect("apply worker panicked")).collect()
        });
        for (i, remap, sds) in results {
            remaps_opt[i] = Some(remap);
            seeds[i] = sds;
        }
    }
    let remaps: Vec<StateRemap> =
        remaps_opt.into_iter().map(|r| r.expect("every fragment remapped")).collect();

    // Phase 3: routing tables over the committed shared view.
    let changed = rebuilt.clone();
    let needs_routing = routing_targets(&old_dests, &remaps, rebuilt);
    let tables: Vec<(usize, crate::RoutingTable)> = {
        let view: Vec<&Fragment<V, E>> = frags.iter().map(|f| &**f).collect();
        let view = &view[..];
        let targets: Vec<usize> =
            needs_routing.iter().enumerate().filter(|&(_, &n)| n).map(|(j, _)| j).collect();
        let per = targets.len().div_ceil(threads).max(1);
        std::thread::scope(|s| {
            let handles: Vec<_> = targets
                .chunks(per)
                .map(|chunk| {
                    s.spawn(move || {
                        chunk
                            .iter()
                            .map(|&j| {
                                (j, routing_table_for(view[j], &|d, g| view[d as usize].local(g)))
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles.into_iter().flat_map(|h| h.join().expect("apply worker panicked")).collect()
        })
    };
    for (j, t) in tables {
        frags[j].set_routing(t);
    }

    AppliedEdit { remaps, seeds, weights_decreased, weights_increased, changed }
}

/// A delta batch resolved against a **vertex-cut** partition: per-fragment
/// stored-edge ops already routed to the fragment the canonical pair-hash
/// rule ([`crate::partition::vertex_cut_edge_frag`]) assigns them to, plus
/// vertex additions/removals and — for elastic migration — forced
/// ownership assignments.
///
/// Unlike [`PartitionEdit`] there is no per-fragment `add_owned`: under
/// vertex-cut, vertex *placement* is derived from edge incidence (plus
/// the isolated-home rule), so [`patch_vertex_cut`] computes holder sets
/// and owners itself. The patch is shared by the delta path (`aap-delta`)
/// and the migration executor (`aap-balance`), which expresses an
/// ownership move as a pure `owner_overrides` edit with no edge ops.
#[derive(Debug, Clone)]
pub struct VertexCutEdit<V, E> {
    /// One edit per fragment; `add_owned` must be empty (placement is
    /// derived). Both stored directions of an undirected logical edge
    /// must land at the same fragment (the pair-hash rule guarantees
    /// this).
    pub frags: Vec<FragmentEdit<V, E>>,
    /// Vertices to isolate: every incident edge is dropped, the dense id
    /// survives as an edgeless owned vertex at its isolated home.
    pub removed_vertices: FxHashSet<VertexId>,
    /// Node payloads for vertices added in this batch.
    pub added: Vec<(VertexId, V)>,
    /// Forced owners (migration): each named vertex must be a member of
    /// its post-edit holder set. Vertices not named follow the default
    /// rule: keep the current owner when the holder set is unchanged,
    /// else the canonical `hs[v % |hs|]`.
    pub owner_overrides: FxHashMap<VertexId, FragId>,
}

impl<V, E> VertexCutEdit<V, E> {
    /// An empty edit over `m` fragments.
    pub fn empty(m: usize) -> Self {
        VertexCutEdit {
            frags: (0..m).map(|_| FragmentEdit::default()).collect(),
            removed_vertices: FxHashSet::default(),
            added: Vec::new(),
            owner_overrides: FxHashMap::default(),
        }
    }
}

/// Apply one resolved vertex-cut delta batch in place — the vertex-cut
/// peer of [`apply_partition_edit`], with cost proportional to the
/// *touched* fragments (those with edge ops, those holding an affected
/// vertex, and isolated homes), never a global rebuild.
///
/// The locality argument: the pair-hash rule assigns each stored edge a
/// fragment from its endpoints alone, so edges never migrate when other
/// edges change. A batch can therefore only change (a) the edge lists of
/// the fragments it names and (b) the holder sets / owners of the
/// vertices incident to changed edges — and every fragment involved in
/// (b) already holds the vertex or gains it through a named edge.
pub fn patch_vertex_cut<V, E>(
    frags: &mut [&mut Fragment<V, E>],
    edit: &VertexCutEdit<V, E>,
) -> AppliedEdit
where
    V: Clone,
    E: Clone + PartialOrd,
{
    patch_vertex_cut_traced(frags, edit, &Tracer::default())
}

/// [`patch_vertex_cut`] emitting a per-fragment `repack` span (delta
/// track, tid = fragment id) around each rebuilt fragment.
pub fn patch_vertex_cut_traced<V, E>(
    frags: &mut [&mut Fragment<V, E>],
    edit: &VertexCutEdit<V, E>,
    tracer: &Tracer,
) -> AppliedEdit
where
    V: Clone,
    E: Clone + PartialOrd,
{
    let m = frags.len();
    assert_eq!(edit.frags.len(), m, "one FragmentEdit per fragment");
    assert!(frags.iter().all(|f| f.is_vertex_cut()), "patch_vertex_cut needs a vertex-cut set");
    assert!(
        edit.frags.iter().all(|fe| fe.add_owned.is_empty()),
        "vertex-cut placement is derived; add vertices via `VertexCutEdit::added`"
    );

    // Affected vertices: endpoints of every edge op, removed/added ids,
    // migration targets — plus endpoints of edges dropped *implicitly* by
    // a vertex removal (their holder sets may shrink too).
    let mut affected: FxHashSet<VertexId> = FxHashSet::default();
    for fe in &edit.frags {
        for (u, v, _) in fe.insert_edges.iter().chain(fe.set_weights.iter()) {
            affected.insert(*u);
            affected.insert(*v);
        }
        for (u, v) in &fe.remove_edges {
            affected.insert(*u);
            affected.insert(*v);
        }
    }
    affected.extend(edit.removed_vertices.iter().copied());
    affected.extend(edit.added.iter().map(|&(v, _)| v));
    affected.extend(edit.owner_overrides.keys().copied());
    if !edit.removed_vertices.is_empty() {
        for f in frags.iter() {
            if !edit.removed_vertices.iter().any(|v| f.local(*v).is_some()) {
                continue;
            }
            for l in f.local_vertices() {
                let gu = f.global(l);
                let u_removed = edit.removed_vertices.contains(&gu);
                for &t in f.neighbors(l) {
                    let gt = f.global(t);
                    if u_removed || edit.removed_vertices.contains(&gt) {
                        affected.insert(gu);
                        affected.insert(gt);
                    }
                }
            }
        }
    }
    let mut affected_sorted: Vec<VertexId> = affected.iter().copied().collect();
    affected_sorted.sort_unstable();

    // Old holder sets, owners, and one node payload per affected vertex.
    let added_payload: FxHashMap<VertexId, &V> = edit.added.iter().map(|(v, d)| (*v, d)).collect();
    let mut hs_old: FxHashMap<VertexId, Vec<FragId>> = FxHashMap::default();
    let mut owner_old: FxHashMap<VertexId, FragId> = FxHashMap::default();
    let mut payload: FxHashMap<VertexId, V> = FxHashMap::default();
    for &v in &affected_sorted {
        let mut hs = Vec::new();
        for (i, f) in frags.iter().enumerate() {
            if let Some(l) = f.local(v) {
                hs.push(i as FragId);
                if f.is_owned(l) {
                    owner_old.insert(v, i as FragId);
                }
                if !payload.contains_key(&v) {
                    payload.insert(v, f.node(l).clone());
                }
            }
        }
        if hs.is_empty() {
            let d = added_payload
                .get(&v)
                .unwrap_or_else(|| panic!("vertex {v} not found in any fragment and not added"));
            payload.insert(v, (*d).clone());
        }
        hs_old.insert(v, hs);
    }
    for v in &edit.removed_vertices {
        assert!(!hs_old[v].is_empty(), "removed vertex {v} does not exist");
    }

    // Touched fragments: direct edits + every holder of an affected vertex.
    let mut touched = vec![false; m];
    for (i, fe) in edit.frags.iter().enumerate() {
        if !fe.is_empty() {
            touched[i] = true;
        }
    }
    for &v in &affected_sorted {
        for &h in &hs_old[&v] {
            touched[h as usize] = true;
        }
    }

    // Derive the post-edit edge list of every touched fragment and
    // collect the post-edit incidence of affected vertices.
    let mut edges_new: Vec<Option<Vec<(VertexId, VertexId, E)>>> = (0..m).map(|_| None).collect();
    let mut edge_diff = vec![false; m];
    let mut weights_decreased = 0u64;
    let mut weights_increased = 0u64;
    let mut inc_new: FxHashMap<VertexId, Vec<FragId>> =
        affected_sorted.iter().map(|&v| (v, Vec::new())).collect();
    for i in 0..m {
        if !touched[i] {
            continue;
        }
        let f: &Fragment<V, E> = frags[i];
        let fe = &edit.frags[i];
        let removed_pairs: FxHashSet<(VertexId, VertexId)> =
            fe.remove_edges.iter().copied().collect();
        let setw: FxHashMap<(VertexId, VertexId), &E> =
            fe.set_weights.iter().map(|(u, v, w)| ((*u, *v), w)).collect();
        let mut edges: Vec<(VertexId, VertexId, E)> =
            Vec::with_capacity(f.edge_count() + fe.insert_edges.len());
        let mut diff = !fe.insert_edges.is_empty();
        for l in f.local_vertices() {
            let gu = f.global(l);
            let u_removed = edit.removed_vertices.contains(&gu);
            for (t, d) in f.edges(l) {
                let gt = f.global(t);
                if u_removed
                    || edit.removed_vertices.contains(&gt)
                    || removed_pairs.contains(&(gu, gt))
                {
                    diff = true;
                    continue;
                }
                if let Some(w) = setw.get(&(gu, gt)) {
                    match weight_change(*w, d) {
                        WeightChange::Decreased => {
                            weights_decreased += 1;
                            diff = true;
                        }
                        WeightChange::Unchanged => {}
                        WeightChange::Increased => {
                            weights_increased += 1;
                            diff = true;
                        }
                    }
                    edges.push((gu, gt, (*w).clone()));
                } else {
                    edges.push((gu, gt, d.clone()));
                }
            }
        }
        for (u, v, d) in &fe.insert_edges {
            assert!(
                !edit.removed_vertices.contains(u) && !edit.removed_vertices.contains(v),
                "inserted edge ({u}, {v}) touches a removed vertex"
            );
            edges.push((*u, *v, d.clone()));
        }
        for &(u, v, _) in &edges {
            if let Some(e) = inc_new.get_mut(&u) {
                e.push(i as FragId);
            }
            if u != v {
                if let Some(e) = inc_new.get_mut(&v) {
                    e.push(i as FragId);
                }
            }
        }
        edge_diff[i] = diff;
        edges_new[i] = Some(edges);
    }

    // New holder sets and owners.
    let mut hs_new: FxHashMap<VertexId, Vec<FragId>> = FxHashMap::default();
    let mut owner_new: FxHashMap<VertexId, FragId> = FxHashMap::default();
    let mut extra_homes: Vec<FragId> = Vec::new();
    for &v in &affected_sorted {
        let mut hs = inc_new.remove(&v).expect("affected vertex tracked");
        hs.sort_unstable();
        hs.dedup();
        if hs.is_empty() {
            hs.push(crate::partition::vertex_cut_isolated_home(v, m));
        }
        let owner = if let Some(&o) = edit.owner_overrides.get(&v) {
            assert!(hs.contains(&o), "owner override {o} for vertex {v} is not a holder");
            o
        } else if hs == hs_old[&v] {
            owner_old[&v]
        } else {
            hs[v as usize % hs.len()]
        };
        for &h in &hs {
            if !touched[h as usize] {
                extra_homes.push(h);
            }
        }
        owner_new.insert(v, owner);
        hs_new.insert(v, hs);
    }
    // Isolated homes not previously holding anything affected: their edge
    // lists are untouched (any affected endpoint would have made them a
    // holder), but they gain an edgeless local and must repack.
    for h in extra_homes {
        let i = h as usize;
        if touched[i] {
            continue;
        }
        touched[i] = true;
        let f: &Fragment<V, E> = frags[i];
        let mut edges = Vec::with_capacity(f.edge_count());
        for l in f.local_vertices() {
            let gu = f.global(l);
            for (t, d) in f.edges(l) {
                edges.push((gu, f.global(t), d.clone()));
            }
        }
        edges_new[i] = Some(edges);
    }

    // Which fragments actually change bytes: edge-list diffs, plus every
    // old/new holder of a vertex whose holder set or owner moved (the
    // owned/copy split, mirror owners, holder CSRs and borders live
    // there).
    let mut rebuilt: Vec<bool> = (0..m).map(|i| touched[i] && edge_diff[i]).collect();
    for &v in &affected_sorted {
        let old = &hs_old[&v];
        let new = &hs_new[&v];
        if old != new || owner_old.get(&v) != Some(&owner_new[&v]) {
            for &h in old.iter().chain(new.iter()) {
                rebuilt[h as usize] = true;
            }
        }
    }

    // Affected vertices by post-edit holding fragment, ascending.
    let mut affected_at: Vec<Vec<VertexId>> = vec![Vec::new(); m];
    for &v in &affected_sorted {
        for &h in &hs_new[&v] {
            affected_at[h as usize].push(v);
        }
    }

    let old_dests: Vec<Vec<FragId>> = frags.iter().map(|f| f.routing().dests().to_vec()).collect();
    let traced = tracer.enabled();
    let mut remaps: Vec<StateRemap> = Vec::with_capacity(m);
    let mut seeds: Vec<Vec<LocalId>> = vec![Vec::new(); m];
    for i in 0..m {
        if !rebuilt[i] {
            remaps.push(StateRemap::identity(frags[i].local_count()));
            for &v in &affected_at[i] {
                seeds[i].push(frags[i].local(v).expect("unchanged holder keeps its copy"));
            }
            seeds[i].sort_unstable();
            seeds[i].dedup();
            continue;
        }
        if traced {
            tracer.begin(
                pid::DELTA,
                i as u32,
                cat::APPLY,
                "repack",
                Args::new().with("frag", i).with("locals", frags[i].local_count()),
            );
        }
        let (nf, remap, sds) = {
            let f: &Fragment<V, E> = frags[i];
            // New local layout: owned (sorted by global) then copies
            // (sorted by global), matching the from-scratch builder.
            let mut owned_new: Vec<(VertexId, V)> = Vec::new();
            let mut copies_new: Vec<(VertexId, V, FragId)> = Vec::new();
            for l in f.local_vertices() {
                let g = f.global(l);
                if affected.contains(&g) {
                    continue; // re-added below if it stays
                }
                if f.is_owned(l) {
                    owned_new.push((g, f.node(l).clone()));
                } else {
                    copies_new.push((g, f.node(l).clone(), f.owner(l)));
                }
            }
            for &v in &affected_at[i] {
                let d = payload[&v].clone();
                let o = owner_new[&v];
                if o == i as FragId {
                    owned_new.push((v, d));
                } else {
                    copies_new.push((v, d, o));
                }
            }
            owned_new.sort_unstable_by_key(|&(g, _)| g);
            copies_new.sort_unstable_by_key(|&(g, _, _)| g);

            let owned_n = owned_new.len();
            let n_local = owned_n + copies_new.len();
            let mut g2l: FxHashMap<VertexId, LocalId> = FxHashMap::default();
            g2l.reserve(n_local);
            let mut globals = Vec::with_capacity(n_local);
            let mut node_data: Vec<V> = Vec::with_capacity(n_local);
            for (g, d) in &owned_new {
                g2l.insert(*g, globals.len() as LocalId);
                globals.push(*g);
                node_data.push(d.clone());
            }
            let mut mirror_owner = Vec::with_capacity(copies_new.len());
            for (g, d, o) in &copies_new {
                g2l.insert(*g, globals.len() as LocalId);
                globals.push(*g);
                node_data.push(d.clone());
                mirror_owner.push(*o);
            }

            let edges = edges_new[i].take().expect("rebuilt fragment derived its edges");
            let mut offsets = vec![0usize; n_local + 1];
            for &(u, _, _) in &edges {
                offsets[g2l[&u] as usize + 1] += 1;
            }
            for l in 1..=n_local {
                offsets[l] += offsets[l - 1];
            }
            let mut cursor = offsets.clone();
            let mut targets = vec![0 as LocalId; edges.len()];
            let mut slots: Vec<Option<E>> = vec![None; edges.len()];
            for (u, v, d) in edges {
                let lu = g2l[&u] as usize;
                targets[cursor[lu]] = g2l[&v];
                slots[cursor[lu]] = Some(d);
                cursor[lu] += 1;
            }
            let edge_data: Vec<E> = slots.into_iter().map(|s| s.expect("every slot filled")).collect();
            let directed = f.local_graph().is_directed();
            let local_graph = Graph::from_parts(directed, node_data, offsets, targets, edge_data);

            // Border + holder CSR over owned: affected vertices use the
            // recomputed holder set, unchanged ones keep their old lists.
            let mut border: Vec<LocalId> = Vec::new();
            let mut holder_offsets = vec![0u32; owned_n + 1];
            let mut holders: Vec<FragId> = Vec::new();
            for (l, (g, _)) in owned_new.iter().enumerate() {
                let hlist: &[FragId] = if affected.contains(g) {
                    &hs_new[g]
                } else {
                    f.mirror_holders(f.local(*g).expect("unchanged owned vertex"))
                };
                for &h in hlist {
                    if h != i as FragId {
                        holders.push(h);
                        holder_offsets[l + 1] += 1;
                    }
                }
                if holder_offsets[l + 1] > 0 {
                    border.push(l as LocalId);
                }
            }
            for l in 1..=owned_n {
                holder_offsets[l] += holder_offsets[l - 1];
            }

            let table: Vec<LocalId> =
                f.globals().iter().map(|g| g2l.get(g).copied().unwrap_or(LocalId::MAX)).collect();
            let remap = StateRemap::from_table(table, n_local);
            let mut sds: Vec<LocalId> = affected_at[i].iter().map(|v| g2l[v]).collect();
            sds.sort_unstable();
            sds.dedup();

            let nf = Fragment::from_parts(
                f.id(),
                f.num_frags(),
                true,
                local_graph,
                globals,
                owned_n,
                border.clone(),
                border,
                mirror_owner,
                holder_offsets,
                holders,
            );
            (nf, remap, sds)
        };
        *frags[i] = nf;
        remaps.push(remap);
        seeds[i] = sds;
        if traced {
            tracer.end(
                pid::DELTA,
                i as u32,
                cat::APPLY,
                "repack",
                Args::new().with("locals", frags[i].local_count()).with("seeds", seeds[i].len()),
            );
        }
    }

    // Routing: rebuilt fragments plus peers pointing at renumbered ones.
    let changed = rebuilt.clone();
    let needs_routing = routing_targets(&old_dests, &remaps, rebuilt);
    {
        let view: Vec<&Fragment<V, E>> = frags.iter().map(|f| &**f).collect();
        let tables: Vec<(usize, crate::RoutingTable)> = needs_routing
            .iter()
            .enumerate()
            .filter(|&(_, &need)| need)
            .map(|(j, _)| (j, routing_table_for(view[j], &|d, g| view[d as usize].local(g))))
            .collect();
        drop(view);
        for (j, t) in tables {
            frags[j].set_routing(t);
        }
    }

    AppliedEdit { remaps, seeds, weights_decreased, weights_increased, changed }
}

/// One ownership move of the elastic rebalancer: a vertex and the
/// fragment that should own it next.
pub type VertexMove = (VertexId, FragId);

/// [`migrate_edge_cut_traced`] without tracing.
pub fn migrate_edge_cut<V, E>(frags: &mut [&mut Fragment<V, E>], moves: &[VertexMove]) -> AppliedEdit
where
    V: Clone,
    E: Clone,
{
    migrate_edge_cut_traced(frags, moves, &Tracer::default())
}

/// Move ownership of selected vertices between edge-cut fragments **in
/// place**, carrying each vertex's out-edges to its new owner — the
/// executor half of `aap-balance`.
///
/// Only the *affected* fragments repack: the source and destination of
/// every move, every fragment that held a moved vertex as a mirror (its
/// `mirror_owner` hint changes), and the owner of every out-edge target
/// of a moved vertex (the edge changing storage fragment can add or drop
/// a mirror of the target, shifting the owner's holder CSR). Everything
/// else keeps an identity [`StateRemap`], so retained warm state
/// survives untouched; at repacked fragments the remap carries state
/// across the renumbering. Seeds mark every surviving copy of a moved
/// vertex (mirrors push their retained value to the new owner) plus
/// every owner whose holder list changed (it re-announces to fresh
/// mirrors), so a single warm incremental round settles the migrated
/// values — the next round is warm, never cold.
pub fn migrate_edge_cut_traced<V, E>(
    frags: &mut [&mut Fragment<V, E>],
    moves: &[VertexMove],
    tracer: &Tracer,
) -> AppliedEdit
where
    V: Clone,
    E: Clone,
{
    let m = frags.len();
    assert!(frags.iter().all(|f| !f.is_vertex_cut()), "migrate_edge_cut needs edge-cut fragments");
    let traced = tracer.enabled();

    // Resolve each move to (from, to); drop no-ops.
    let mut moved: FxHashMap<VertexId, (FragId, FragId)> = FxHashMap::default();
    for &(v, to) in moves {
        assert!((to as usize) < m, "move target {to} out of range");
        let from = (0..m)
            .find(|&i| frags[i].local(v).is_some_and(|l| frags[i].is_owned(l)))
            .unwrap_or_else(|| panic!("moved vertex {v} is not owned by any fragment"))
            as FragId;
        if from != to {
            let prev = moved.insert(v, (from, to));
            assert!(prev.is_none(), "vertex {v} appears twice in one migration plan");
        }
    }
    if moved.is_empty() {
        return AppliedEdit {
            remaps: frags.iter().map(|f| StateRemap::identity(f.local_count())).collect(),
            seeds: vec![Vec::new(); m],
            weights_decreased: 0,
            weights_increased: 0,
            changed: vec![false; m],
        };
    }
    let mut moved_sorted: Vec<VertexId> = moved.keys().copied().collect();
    moved_sorted.sort_unstable();

    if traced {
        tracer.begin(
            pid::DELTA,
            0,
            cat::BALANCE,
            "migrate",
            Args::new().with("moves", moved_sorted.len()),
        );
    }

    // Gather every moved vertex's payload, out-adjacency, old holder
    // list, and the pre-move owner of each out-edge target — all read
    // from the source fragment — and classify the affected fragments.
    // `structural` fragments (the from/to of some move) gain or lose
    // owned rows, so their dense local id space shifts and they repack.
    // The rest of the affected set only sees *metadata* change — a
    // mirror's owner hint, an owned vertex's holder list — and is
    // patched in place under an identity remap.
    let n_global: usize = frags
        .iter()
        .map(|f| {
            let (o, n) = (f.owned_count(), f.local_count());
            let mut mx = 0usize;
            if o > 0 {
                mx = f.global((o - 1) as LocalId) as usize + 1;
            }
            if n > o {
                mx = mx.max(f.global((n - 1) as LocalId) as usize + 1);
            }
            mx
        })
        .max()
        .unwrap_or(0);
    let mut payload: FxHashMap<VertexId, V> = FxHashMap::default();
    let mut moved_edges: FxHashMap<VertexId, Vec<(VertexId, E)>> = FxHashMap::default();
    let mut old_holders: FxHashMap<VertexId, Vec<FragId>> = FxHashMap::default();
    // Dense per-global tables (global id spaces are contiguous): the
    // phase-1 splice probes these on every retained row, where a hash
    // per edge is the difference between O(edges) and "feels like it".
    let mut owner_hint: Vec<FragId> = vec![FragId::MAX; n_global];
    let mut moved_from: Vec<FragId> = vec![FragId::MAX; n_global];
    let mut moved_to: Vec<FragId> = vec![FragId::MAX; n_global];
    for (&v, &(from, to)) in &moved {
        moved_from[v as usize] = from;
        moved_to[v as usize] = to;
    }
    let mut structural = vec![false; m];
    let mut affected = vec![false; m];
    for &v in &moved_sorted {
        let (from, to) = moved[&v];
        structural[from as usize] = true;
        structural[to as usize] = true;
        let f: &Fragment<V, E> = frags[from as usize];
        let l = f.local(v).expect("moved vertex owned at source");
        payload.insert(v, f.node(l).clone());
        let mut adj = Vec::new();
        for (t, d) in f.edges(l) {
            let gt = f.global(t);
            let o = if f.is_owned(t) { from } else { f.owner(t) };
            owner_hint[gt as usize] = o;
            affected[o as usize] = true;
            adj.push((gt, d.clone()));
        }
        moved_edges.insert(v, adj);
        let hl = f.mirror_holders(l).to_vec();
        for &h in &hl {
            affected[h as usize] = true;
        }
        old_holders.insert(v, hl);
    }
    for i in 0..m {
        affected[i] |= structural[i];
    }

    // Post-move owner of a global id, given its pre-move owner.
    let owner_post = |g: VertexId, pre: FragId| {
        let t = moved_to[g as usize];
        if t == FragId::MAX {
            pre
        } else {
            t
        }
    };

    // Phase 1: derive each structural fragment's new layout without
    // mutating anything yet. The rebuild splices the old CSR instead of
    // re-sorting a gathered edge list: owned locals are sorted by global
    // id and every row is sorted by target global id, so merging the
    // retained rows with the (also sorted) moved-in rows reproduces the
    // from-scratch builder's layout in O(edges) array passes — the only
    // hashing left is for the handful of moved-in row endpoints.
    struct MigCore<V, E> {
        globals: Vec<VertexId>, // new locals: owned then mirrors, by global
        owned_n: usize,
        // Per new owned local: retained old local, or a moved-in global.
        owned_src: Vec<Result<LocalId, VertexId>>,
        // Per new mirror: retained/demoted old local, or fresh here.
        mirror_src: Vec<Option<LocalId>>,
        mirror_owner: Vec<FragId>,
        local_graph: Graph<V, E>,
        inner_out: Vec<LocalId>,
        old_to_new: Vec<LocalId>, // LocalId::MAX = dropped
    }
    let mut cores: Vec<Option<MigCore<V, E>>> = (0..m).map(|_| None).collect();
    for i in 0..m {
        if !structural[i] {
            continue;
        }
        let fid = i as FragId;
        let f: &Fragment<V, E> = frags[i];
        let old_owned = f.owned_count();
        let old_n = f.local_count();
        let moved_in: Vec<VertexId> =
            moved_sorted.iter().copied().filter(|v| moved[v].1 == fid).collect();

        // New owned set: retained old owned merged with moved-in, both
        // ascending by global id.
        let mut owned_src: Vec<Result<LocalId, VertexId>> =
            Vec::with_capacity(old_owned + moved_in.len());
        {
            let mut inbound = moved_in.iter().copied().peekable();
            for l in 0..old_owned {
                let g = f.global(l as LocalId);
                while inbound.peek().is_some_and(|&v| v < g) {
                    owned_src.push(Err(inbound.next().expect("peeked")));
                }
                if moved_from[g as usize] == fid {
                    continue; // moved out: its row travels with it
                }
                owned_src.push(Ok(l as LocalId));
            }
            owned_src.extend(inbound.map(Err));
        }
        let owned_n = owned_src.len();

        // Which old locals the surviving rows still reference (plain
        // array pass), plus endpoints arriving with moved-in rows.
        let mut referenced = vec![false; old_n];
        for l in 0..old_owned {
            if moved_from[f.global(l as LocalId) as usize] == fid {
                continue;
            }
            for &t in f.neighbors(l as LocalId) {
                referenced[t as usize] = true;
            }
        }
        let mut fresh: Vec<VertexId> = Vec::new();
        for &v in &moved_in {
            for &(gt, _) in &moved_edges[&v] {
                match f.local(gt) {
                    Some(t) => referenced[t as usize] = true,
                    None => fresh.push(gt),
                }
            }
        }
        fresh.sort_unstable();
        fresh.dedup();
        // An endpoint that itself moved here is owned, not a mirror.
        fresh.retain(|&g| moved_to[g as usize] != fid);

        // New mirror set, ascending by global id: referenced old mirrors
        // (minus promotions), demoted moved-out owned, fresh endpoints.
        // The two non-mirror sources are tiny, so merge them first.
        let mut small: Vec<(VertexId, Option<LocalId>)> =
            fresh.iter().map(|&g| (g, None)).collect();
        for l in 0..old_owned {
            let g = f.global(l as LocalId);
            if referenced[l] && moved_from[g as usize] == fid {
                small.push((g, Some(l as LocalId)));
            }
        }
        small.sort_unstable_by_key(|&(g, _)| g);
        let mut mirrors: Vec<(VertexId, Option<LocalId>)> =
            Vec::with_capacity(old_n - old_owned + small.len());
        {
            let mut extra = small.into_iter().peekable();
            for l in old_owned..old_n {
                if !referenced[l] {
                    continue; // no surviving edge points at it: dropped
                }
                let g = f.global(l as LocalId);
                if moved_to[g as usize] == fid {
                    continue; // promoted to owned
                }
                while extra.peek().is_some_and(|&(e, _)| e < g) {
                    mirrors.push(extra.next().expect("peeked"));
                }
                mirrors.push((g, Some(l as LocalId)));
            }
            mirrors.extend(extra);
        }

        // Globals, node data, owner hints, and the old→new local table.
        let n_local = owned_n + mirrors.len();
        let mut globals = Vec::with_capacity(n_local);
        let mut node_data: Vec<V> = Vec::with_capacity(n_local);
        let mut old_to_new = vec![LocalId::MAX; old_n];
        // Moved-in endpoints with no old local, resolved by global id.
        let mut ext: FxHashMap<VertexId, LocalId> = FxHashMap::default();
        for (nl, src) in owned_src.iter().enumerate() {
            match *src {
                Ok(ol) => {
                    old_to_new[ol as usize] = nl as LocalId;
                    globals.push(f.global(ol));
                    node_data.push(f.node(ol).clone());
                }
                Err(g) => {
                    if let Some(ol) = f.local(g) {
                        old_to_new[ol as usize] = nl as LocalId; // was a mirror
                    } else {
                        ext.insert(g, nl as LocalId);
                    }
                    globals.push(g);
                    node_data.push(payload[&g].clone());
                }
            }
        }
        let mut mirror_owner = Vec::with_capacity(mirrors.len());
        let mut mirror_src = Vec::with_capacity(mirrors.len());
        for (k, &(g, src)) in mirrors.iter().enumerate() {
            let nl = (owned_n + k) as LocalId;
            globals.push(g);
            mirror_src.push(src);
            match src {
                Some(ol) => {
                    old_to_new[ol as usize] = nl;
                    let pre = if f.is_owned(ol) { fid } else { f.owner(ol) };
                    mirror_owner.push(owner_post(g, pre));
                    node_data.push(f.node(ol).clone());
                }
                None => {
                    // Fresh mirrors only arise from moved-in edges, whose
                    // targets carry a gathered owner hint.
                    let pre = owner_hint[g as usize];
                    debug_assert_ne!(pre, FragId::MAX, "fresh mirror without a gathered hint");
                    mirror_owner.push(owner_post(g, pre));
                    ext.insert(g, nl);
                    node_data.push(match payload.get(&g) {
                        Some(d) => d.clone(),
                        None => {
                            let of: &Fragment<V, E> = frags[pre as usize];
                            let ol = of.local(g).expect("target owned at its pre-move owner");
                            of.node(ol).clone()
                        }
                    });
                }
            }
        }

        // CSR: splice retained rows (targets remapped through the table,
        // order preserved) with moved-in rows. Rows stay sorted by
        // target global id because both sources already are.
        let mut offsets = Vec::with_capacity(n_local + 1);
        offsets.push(0usize);
        let mut targets: Vec<LocalId> = Vec::with_capacity(f.edge_count());
        let mut edge_data: Vec<E> = Vec::with_capacity(f.edge_count());
        let mut inner_out: Vec<LocalId> = Vec::new();
        for (nl, src) in owned_src.iter().enumerate() {
            let mut border = false;
            match *src {
                Ok(ol) => {
                    for (t, d) in f.edges(ol) {
                        let nt = old_to_new[t as usize];
                        debug_assert_ne!(nt, LocalId::MAX, "referenced target kept");
                        border |= nt as usize >= owned_n;
                        targets.push(nt);
                        edge_data.push(d.clone());
                    }
                }
                Err(g) => {
                    for (gt, d) in &moved_edges[&g] {
                        let nt = match f.local(*gt) {
                            Some(ol) => old_to_new[ol as usize],
                            None => ext[gt],
                        };
                        border |= nt as usize >= owned_n;
                        targets.push(nt);
                        edge_data.push(d.clone());
                    }
                }
            }
            offsets.push(targets.len());
            if border {
                inner_out.push(nl as LocalId);
            }
        }
        offsets.resize(n_local + 1, targets.len()); // mirrors own no rows
        let directed = f.local_graph().is_directed();
        let local_graph = Graph::from_parts(directed, node_data, offsets, targets, edge_data);
        cores[i] = Some(MigCore {
            globals,
            owned_n,
            owned_src,
            mirror_src,
            mirror_owner,
            local_graph,
            inner_out,
            old_to_new,
        });
    }

    // Phase 2: which structural fragments mirror each vertex after the
    // migration — a per-global bitmask when fragments fit a word (they
    // do outside stress tests), else a map. Bits read out in ascending
    // fragment order, so holder lists stay sorted; fragments outside
    // the structural set keep their edge stock (and thus their mirror
    // membership) bit-for-bit.
    let use_bits = m <= 64;
    let mut mirror_bits: Vec<u64> = if use_bits { vec![0u64; n_global] } else { Vec::new() };
    let mut mirror_map: FxHashMap<VertexId, Vec<FragId>> = FxHashMap::default();
    for (i, core) in cores.iter().enumerate() {
        if let Some(core) = core {
            for &g in &core.globals[core.owned_n..] {
                if use_bits {
                    mirror_bits[g as usize] |= 1u64 << i;
                } else {
                    mirror_map.entry(g).or_default().push(i as FragId);
                }
            }
        }
    }
    let extend_mirrors = |g: VertexId, fid: FragId, hl: &mut Vec<FragId>| {
        if use_bits {
            let mut w = mirror_bits[g as usize];
            while w != 0 {
                let h = w.trailing_zeros() as FragId;
                if h != fid {
                    hl.push(h);
                }
                w &= w - 1;
            }
        } else if let Some(ms) = mirror_map.get(&g) {
            hl.extend(ms.iter().copied().filter(|&h| h != fid));
        }
    };

    // Phase 3: commit the structural fragments. holders_new(v) =
    // (old holders outside the structural set) ∪ (structural fragments
    // whose new mirror set contains v).
    let old_dests: Vec<Vec<FragId>> = frags.iter().map(|f| f.routing().dests().to_vec()).collect();
    let mut changed = structural.clone();
    let mut remaps: Vec<StateRemap> = Vec::with_capacity(m);
    let mut seeds: Vec<Vec<LocalId>> = vec![Vec::new(); m];
    for i in 0..m {
        let Some(core) = cores[i].take() else {
            remaps.push(StateRemap::identity(frags[i].local_count()));
            continue;
        };
        if traced {
            tracer.begin(
                pid::DELTA,
                i as u32,
                cat::BALANCE,
                "repack",
                Args::new().with("frag", i).with("locals", frags[i].local_count()),
            );
        }
        let (nf, remap, sds) = {
            let f: &Fragment<V, E> = frags[i];
            let fid = i as FragId;
            let MigCore {
                globals,
                owned_n,
                owned_src,
                mirror_src,
                mirror_owner,
                local_graph,
                inner_out,
                old_to_new,
            } = core;

            let mut inner_in: Vec<LocalId> = Vec::new();
            let mut holder_offsets = vec![0u32; owned_n + 1];
            let mut holders: Vec<FragId> = Vec::new();
            let mut sds: Vec<LocalId> = Vec::new();
            let mut hl: Vec<FragId> = Vec::new();
            for (l, src) in owned_src.iter().enumerate() {
                let g = globals[l];
                let old: &[FragId] = match *src {
                    Err(_) => &old_holders[&g],
                    Ok(ol) => f.mirror_holders(ol),
                };
                hl.clear();
                hl.extend(old.iter().copied().filter(|&h| !structural[h as usize]));
                extend_mirrors(g, fid, &mut hl);
                hl.sort_unstable();
                hl.dedup();
                let holders_changed = hl.as_slice() != old;
                for &h in &hl {
                    holders.push(h);
                    holder_offsets[l + 1] += 1;
                }
                if !hl.is_empty() {
                    inner_in.push(l as LocalId);
                }
                if moved_to[g as usize] != FragId::MAX || holders_changed {
                    sds.push(l as LocalId);
                }
            }
            for l in 1..=owned_n {
                holder_offsets[l] += holder_offsets[l - 1];
            }
            for (k, src) in mirror_src.iter().enumerate() {
                if src.is_none() || moved_to[globals[owned_n + k] as usize] != FragId::MAX {
                    sds.push((owned_n + k) as LocalId);
                }
            }

            let n_local = globals.len();
            let remap = StateRemap::from_table(old_to_new, n_local);
            sds.sort_unstable();
            sds.dedup();

            let nf = Fragment::from_parts(
                f.id(),
                f.num_frags(),
                false,
                local_graph,
                globals,
                owned_n,
                inner_in,
                inner_out,
                mirror_owner,
                holder_offsets,
                holders,
            );
            (nf, remap, sds)
        };
        *frags[i] = nf;
        remaps.push(remap);
        seeds[i] = sds;
        if traced {
            tracer.end(
                pid::DELTA,
                i as u32,
                cat::BALANCE,
                "repack",
                Args::new().with("locals", frags[i].local_count()).with("seeds", seeds[i].len()),
            );
        }
    }

    // Phase 4: patch the metadata-affected fragments in place. Their
    // vertex sets and stored edges are untouched — only a mirror's owner
    // hint (its vertex migrated away) or an owned vertex's holder list
    // (a structural peer gained or dropped a copy) can change, and a
    // fragment that turns out bit-identical stays unmarked.
    for i in 0..m {
        if structural[i] || !affected[i] {
            continue;
        }
        let fid = i as FragId;
        let mut sds: Vec<LocalId> = Vec::new();
        let mut owner_patch: Vec<(LocalId, FragId)> = Vec::new();
        let mut borders: Option<(Vec<LocalId>, Vec<u32>, Vec<FragId>)> = None;
        {
            let f: &Fragment<V, E> = frags[i];
            for &v in &moved_sorted {
                if let Some(l) = f.local(v) {
                    debug_assert!(!f.is_owned(l), "moved vertex owned outside structural set");
                    owner_patch.push((l, moved[&v].1));
                    sds.push(l); // retained copy re-announces to the new owner
                }
            }
            let owned_n = f.owned_count();
            let mut inner_in: Vec<LocalId> = Vec::new();
            let mut holder_offsets = vec![0u32; owned_n + 1];
            let mut holders: Vec<FragId> = Vec::new();
            let mut borders_changed = false;
            let mut hl: Vec<FragId> = Vec::new();
            for l in 0..owned_n {
                let old = f.mirror_holders(l as LocalId);
                let g = f.global(l as LocalId);
                hl.clear();
                hl.extend(old.iter().copied().filter(|&h| !structural[h as usize]));
                extend_mirrors(g, fid, &mut hl);
                hl.sort_unstable();
                hl.dedup();
                if hl.as_slice() != old {
                    borders_changed = true;
                    sds.push(l as LocalId); // re-announce to the fresh holder set
                }
                holder_offsets[l + 1] = holder_offsets[l] + hl.len() as u32;
                if !hl.is_empty() {
                    inner_in.push(l as LocalId);
                }
                holders.extend_from_slice(&hl);
            }
            if borders_changed {
                borders = Some((inner_in, holder_offsets, holders));
            }
        }
        if owner_patch.is_empty() && borders.is_none() {
            continue; // bit-identical: keep changed[i] = false
        }
        for &(l, to) in &owner_patch {
            frags[i].set_mirror_owner(l, to);
        }
        if let Some((inner_in, holder_offsets, holders)) = borders {
            frags[i].replace_borders(inner_in, holder_offsets, holders);
        }
        sds.sort_unstable();
        sds.dedup();
        seeds[i] = sds;
        changed[i] = true;
        if traced {
            tracer.instant(
                pid::DELTA,
                i as u32,
                cat::BALANCE,
                "patch",
                Args::new().with("frag", i).with("seeds", seeds[i].len()),
            );
        }
    }

    // Routing: changed fragments plus peers pointing at renumbered ones.
    let needs_routing = routing_targets(&old_dests, &remaps, changed.clone());
    {
        let view: Vec<&Fragment<V, E>> = frags.iter().map(|f| &**f).collect();
        let tables: Vec<(usize, crate::RoutingTable)> = needs_routing
            .iter()
            .enumerate()
            .filter(|&(_, &need)| need)
            .map(|(j, _)| (j, routing_table_for(view[j], &|d, g| view[d as usize].local(g))))
            .collect();
        drop(view);
        for (j, t) in tables {
            frags[j].set_routing(t);
        }
    }
    if traced {
        tracer.end(pid::DELTA, 0, cat::BALANCE, "migrate", Args::new());
    }

    AppliedEdit { remaps, seeds, weights_decreased: 0, weights_increased: 0, changed }
}

/// Reconstruct the global graph from a fragment set (each stored edge
/// lives in exactly one fragment; node data at the owner). Used by
/// full re-partition paths and as the reference in equivalence tests.
pub fn reassemble<V: Clone, E: Clone>(frags: &[&Fragment<V, E>]) -> Graph<V, E> {
    let n: usize = frags.iter().map(|f| f.owned_count()).sum();
    let directed = frags
        .iter()
        .find(|f| f.local_count() > 0)
        .map(|f| f.local_graph().is_directed())
        .unwrap_or(true);
    let mut nodes: Vec<Option<V>> = vec![None; n];
    let mut edges: Vec<(VertexId, VertexId, E)> = Vec::new();
    for f in frags {
        for l in f.owned_vertices() {
            nodes[f.global(l) as usize] = Some(f.node(l).clone());
        }
        for l in f.local_vertices() {
            let gu = f.global(l);
            for (t, d) in f.edges(l) {
                edges.push((gu, f.global(t), d.clone()));
            }
        }
    }
    let node_data: Vec<V> =
        nodes.into_iter().map(|v| v.expect("every vertex owned somewhere")).collect();
    Graph::from_stored_edges(directed, node_data, edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::{build_fragments, build_fragments_n, hash_partition};
    use crate::GraphBuilder;

    fn path4() -> (Graph<(), u32>, Vec<Fragment<(), u32>>) {
        let mut b = GraphBuilder::new_undirected(4);
        b.add_edge(0, 1, 1u32);
        b.add_edge(1, 2, 1);
        b.add_edge(2, 3, 1);
        let g = b.build();
        let frags = build_fragments(&g, &[0, 0, 1, 1]);
        (g, frags)
    }

    fn edit_for(m: usize) -> PartitionEdit<(), u32> {
        PartitionEdit {
            frags: vec![FragmentEdit::default(); m],
            removed_vertices: FxHashSet::default(),
            owners: FxHashMap::default(),
            touched: vec![false; m],
        }
    }

    #[test]
    fn remap_identity_and_table() {
        let id = StateRemap::identity(3);
        assert!(id.is_identity());
        assert_eq!(id.map(2), Some(2));
        assert_eq!(id.map_vec(vec![7, 8, 9], 0), vec![7, 8, 9]);

        let r = StateRemap::from_table(vec![1, LocalId::MAX, 0], 3);
        assert!(!r.is_identity());
        assert_eq!(r.map(0), Some(1));
        assert_eq!(r.map(1), None);
        assert_eq!(r.map_vec(vec![10, 20, 30], 0), vec![30, 10, 0]);

        // A full-coverage in-order table collapses to identity.
        assert!(StateRemap::from_table(vec![0, 1, 2], 3).is_identity());
    }

    #[test]
    fn insert_cross_edge_creates_mirror_and_holder() {
        let (_, mut frags) = path4();
        let mut edit = edit_for(2);
        // New undirected cut edge 0-3: stored 0->3 at frag 0, 3->0 at frag 1.
        edit.frags[0].insert_edges.push((0, 3, 5));
        edit.frags[1].insert_edges.push((3, 0, 5));
        edit.touched = vec![true, true];
        edit.owners.insert(0, 0);
        edit.owners.insert(3, 1);
        let mut refs: Vec<&mut Fragment<(), u32>> = frags.iter_mut().collect();
        let applied = apply_partition_edit(&mut refs, &edit, &mut EditBuffers::default());

        let f0 = &frags[0];
        let m3 = f0.local(3).expect("frag 0 gained a mirror of 3");
        assert!(!f0.is_owned(m3));
        assert_eq!(f0.owner(m3), 1);
        // Owner side: holder list of 3 now includes fragment 0, and 3 is a
        // receiving border vertex.
        let f1 = &frags[1];
        let l3 = f1.local(3).unwrap();
        assert!(f1.is_owned(l3));
        assert!(f1.mirror_holders(l3).contains(&0));
        assert!(f1.inner_in().contains(&l3));
        // Routing agrees with route() on both sides.
        assert!(applied.remaps[0].map(0).is_some());
        assert_eq!(applied.remaps[0].new_local_count(), f0.local_count());
        let (slots, remotes) = f0.routing().fanout(m3);
        assert_eq!(slots.len(), 1);
        assert_eq!(remotes[0], l3);
        // Seeds name the new mirror and the edge endpoints.
        assert!(applied.seeds[0].contains(&m3));
        assert!(applied.seeds[1].contains(&l3));
    }

    #[test]
    fn in_place_matches_full_rebuild() {
        // Random-ish graph, apply inserts + removals, compare with a full
        // build_fragments on the edited global graph.
        let g = crate::generate::small_world(60, 2, 0.2, 5);
        let assignment = hash_partition(&g, 3);
        let mut frags = build_fragments_n(&g, &assignment, 3);

        let mut edit = edit_for(3);
        let inserts: [(VertexId, VertexId, u32); 3] = [(0, 30, 9), (5, 45, 2), (10, 50, 4)];
        let removes: [(VertexId, VertexId); 2] = [(0, 1), (20, 21)];
        for &(u, v, w) in &inserts {
            edit.frags[assignment[u as usize] as usize].insert_edges.push((u, v, w));
            edit.frags[assignment[v as usize] as usize].insert_edges.push((v, u, w));
        }
        for &(u, v) in &removes {
            edit.frags[assignment[u as usize] as usize].remove_edges.push((u, v));
            edit.frags[assignment[v as usize] as usize].remove_edges.push((v, u));
        }
        for v in 0..60u32 {
            edit.owners.insert(v, assignment[v as usize]);
        }
        edit.touched = edit.frags.iter().map(|fe| !fe.is_empty()).collect();
        let mut refs: Vec<&mut Fragment<(), u32>> = frags.iter_mut().collect();
        apply_partition_edit(&mut refs, &edit, &mut EditBuffers::default());

        // Reference: rebuild from the edited global graph.
        let mut b = GraphBuilder::new_undirected(60);
        let removed: FxHashSet<(u32, u32)> =
            removes.iter().flat_map(|&(u, v)| [(u, v), (v, u)]).collect();
        for (u, v, d) in g.all_edges() {
            if u < v && !removed.contains(&(u, v)) {
                b.add_edge(u, v, *d);
            }
        }
        for &(u, v, w) in &inserts {
            b.add_edge(u, v, w);
        }
        let expect = build_fragments_n(&b.build(), &assignment, 3);

        for (f, e) in frags.iter().zip(&expect) {
            assert_eq!(f.owned_count(), e.owned_count());
            assert_eq!(f.globals(), e.globals(), "frag {} locals differ", f.id());
            assert_eq!(f.inner_in(), e.inner_in());
            assert_eq!(f.inner_out(), e.inner_out());
            assert_eq!(f.routing().dests(), e.routing().dests());
            for l in f.local_vertices() {
                let mut a: Vec<_> = f.edges(l).map(|(t, d)| (f.global(t), *d)).collect();
                let mut bb: Vec<_> = e.edges(l).map(|(t, d)| (e.global(t), *d)).collect();
                a.sort_unstable();
                bb.sort_unstable();
                assert_eq!(a, bb, "frag {} vertex {} adjacency", f.id(), f.global(l));
                assert_eq!(f.routing().fanout(l), e.routing().fanout(l));
                if f.is_owned(l) {
                    assert_eq!(f.mirror_holders(l), e.mirror_holders(l));
                }
            }
        }
    }

    #[test]
    fn remove_vertex_isolates_and_drops_mirrors() {
        let (_, mut frags) = path4();
        let mut edit = edit_for(2);
        // Remove vertex 2: owner is frag 1; frag 0 holds a mirror of it.
        edit.removed_vertices.insert(2);
        edit.touched = vec![true, true];
        edit.owners.insert(2, 1);
        let mut refs: Vec<&mut Fragment<(), u32>> = frags.iter_mut().collect();
        let applied = apply_partition_edit(&mut refs, &edit, &mut EditBuffers::default());

        // Frag 0 lost its mirror of 2 (renumbered).
        assert!(frags[0].local(2).is_none());
        assert!(!applied.remaps[0].is_identity());
        // Frag 1 keeps vertex 2 as an isolated owned vertex.
        let l2 = frags[1].local(2).expect("dense id survives");
        assert!(frags[1].is_owned(l2));
        assert!(frags[1].neighbors(l2).is_empty());
        assert!(frags[1].mirror_holders(l2).is_empty());
        // No routing fanout remains for it.
        assert_eq!(frags[1].routing().fanout_len(l2), 0);
    }

    #[test]
    fn weight_update_keeps_ids_and_counts_direction() {
        let (_, mut frags) = path4();
        let mut edit = edit_for(2);
        // Edge 1-2 is cut: stored 1->2 at frag 0 and 2->1 at frag 1.
        edit.frags[0].set_weights.push((1, 2, 7));
        edit.frags[1].set_weights.push((2, 1, 7));
        edit.touched = vec![true, true];
        let mut refs: Vec<&mut Fragment<(), u32>> = frags.iter_mut().collect();
        let applied = apply_partition_edit(&mut refs, &edit, &mut EditBuffers::default());
        assert_eq!(applied.weights_increased, 2);
        assert_eq!(applied.weights_decreased, 0);
        assert!(applied.remaps.iter().all(|r| r.is_identity()));
        let f0 = &frags[0];
        let l1 = f0.local(1).unwrap();
        let m2 = f0.local(2).unwrap();
        let pos = f0.neighbors(l1).iter().position(|&t| t == m2).unwrap();
        assert_eq!(f0.edge_data(l1)[pos], 7);
    }

    #[test]
    fn vertex_cut_owner_override_moves_ownership() {
        let g = crate::generate::small_world(40, 2, 0.2, 3);
        let ea = crate::partition::vertex_cut_partition(&g, 3);
        let mut frags = crate::partition::build_fragments_vertex_cut_n(&g, &ea, 3);
        // Pick a replicated vertex to migrate: owner -> first other holder.
        let (v, from, to) = frags
            .iter()
            .enumerate()
            .find_map(|(i, f)| {
                f.owned_vertices().find_map(|l| {
                    let hs = f.mirror_holders(l);
                    (!hs.is_empty()).then(|| (f.global(l), i as FragId, hs[0]))
                })
            })
            .expect("some vertex is replicated");
        let total_owned: usize = frags.iter().map(|f| f.owned_count()).sum();

        let mut edit = VertexCutEdit::empty(3);
        edit.owner_overrides.insert(v, to);
        let applied = {
            let mut refs: Vec<&mut Fragment<(), u32>> = frags.iter_mut().collect();
            patch_vertex_cut(&mut refs, &edit)
        };

        // Ownership moved; the old owner keeps a copy (its edges stayed).
        let lf = frags[from as usize].local(v).expect("old owner keeps the copy");
        assert!(!frags[from as usize].is_owned(lf));
        assert_eq!(frags[from as usize].owner(lf), to);
        let lt = frags[to as usize].local(v).expect("new owner holds it");
        assert!(frags[to as usize].is_owned(lt));
        assert!(frags[to as usize].mirror_holders(lt).contains(&from));
        // The dense vertex space is still owned exactly once.
        assert_eq!(frags.iter().map(|f| f.owned_count()).sum::<usize>(), total_owned);
        // Only the holders of v changed bytes; everyone else is identity.
        for (i, f) in frags.iter().enumerate() {
            if f.local(v).is_none() {
                assert!(!applied.changed[i], "non-holder {i} marked changed");
                assert!(applied.remaps[i].is_identity());
            }
        }
        // v is seeded at every holder (owner re-announces, copies refresh).
        for (i, f) in frags.iter().enumerate() {
            if let Some(l) = f.local(v) {
                assert!(applied.seeds[i].contains(&l), "frag {i} missing seed");
            }
        }
        // Routing stays symmetric: the new owner fans out to its holders.
        let (slots, _remotes) = frags[to as usize].routing().fanout(lt);
        assert!(!slots.is_empty());
    }

    #[test]
    fn migrate_edge_cut_matches_full_rebuild() {
        let g = crate::generate::small_world(60, 2, 0.2, 7);
        let mut assignment = hash_partition(&g, 3);
        let mut frags = build_fragments_n(&g, &assignment, 3);

        // Move two border vertices out of fragment 0 and one out of 2.
        let picks: Vec<VertexId> = {
            let f0 = &frags[0];
            let mut p: Vec<VertexId> =
                f0.inner_in().iter().take(2).map(|&l| f0.global(l)).collect();
            let f2 = &frags[2];
            p.extend(f2.inner_out().iter().take(1).map(|&l| f2.global(l)));
            p
        };
        assert_eq!(picks.len(), 3, "need three border vertices to move");
        let moves: Vec<VertexMove> = vec![(picks[0], 1), (picks[1], 2), (picks[2], 0)];
        let applied = {
            let mut refs: Vec<&mut Fragment<(), u32>> = frags.iter_mut().collect();
            migrate_edge_cut(&mut refs, &moves)
        };
        for &(v, to) in &moves {
            assignment[v as usize] = to;
        }

        // The in-place migration must land on exactly the layout the
        // from-scratch builder produces for the updated assignment.
        let expect = build_fragments_n(&g, &assignment, 3);
        for (f, e) in frags.iter().zip(&expect) {
            assert_eq!(f.owned_count(), e.owned_count(), "frag {} owned", f.id());
            assert_eq!(f.globals(), e.globals(), "frag {} locals differ", f.id());
            assert_eq!(f.inner_in(), e.inner_in());
            assert_eq!(f.inner_out(), e.inner_out());
            assert_eq!(f.routing().dests(), e.routing().dests());
            for l in f.local_vertices() {
                let mut a: Vec<_> = f.edges(l).map(|(t, d)| (f.global(t), *d)).collect();
                let mut bb: Vec<_> = e.edges(l).map(|(t, d)| (e.global(t), *d)).collect();
                a.sort_unstable();
                bb.sort_unstable();
                assert_eq!(a, bb, "frag {} vertex {} adjacency", f.id(), f.global(l));
                assert_eq!(f.routing().fanout(l), e.routing().fanout(l));
                if f.is_owned(l) {
                    assert_eq!(f.mirror_holders(l), e.mirror_holders(l));
                } else {
                    assert_eq!(f.owner(l), e.owner(l), "mirror owner of {}", f.global(l));
                }
            }
        }

        // Every surviving copy of a moved vertex is seeded, and untouched
        // fragments keep identity remaps with no seeds.
        for (i, f) in frags.iter().enumerate() {
            for &(v, _) in &moves {
                if let Some(l) = f.local(v) {
                    assert!(applied.seeds[i].contains(&l), "frag {i} missing seed for {v}");
                }
            }
            if !applied.changed[i] {
                assert!(applied.remaps[i].is_identity());
                assert!(applied.seeds[i].is_empty());
            }
        }
    }

    #[test]
    fn migrate_edge_cut_noop_is_identity() {
        let (_, mut frags) = path4();
        let before: Vec<Vec<VertexId>> = frags.iter().map(|f| f.globals().to_vec()).collect();
        let applied = {
            let mut refs: Vec<&mut Fragment<(), u32>> = frags.iter_mut().collect();
            // Vertex 1 is already owned by fragment 0: nothing to do.
            migrate_edge_cut(&mut refs, &[(1, 0)])
        };
        assert!(applied.remaps.iter().all(|r| r.is_identity()));
        assert!(applied.seeds.iter().all(|s| s.is_empty()));
        assert!(applied.changed.iter().all(|c| !c));
        for (f, b) in frags.iter().zip(&before) {
            assert_eq!(f.globals(), b.as_slice());
        }
    }

    #[test]
    fn vertex_cut_patch_insert_matches_full_rebuild_layout() {
        let g = crate::generate::small_world(50, 2, 0.15, 11);
        let ea = crate::partition::vertex_cut_partition(&g, 4);
        let mut frags = crate::partition::build_fragments_vertex_cut_n(&g, &ea, 4);
        // Insert undirected logical edge 3-27 via the pair-hash rule.
        let t = crate::partition::vertex_cut_edge_frag(3, 27, 4) as usize;
        let mut edit = VertexCutEdit::empty(4);
        edit.frags[t].insert_edges.push((3, 27, 9u32));
        edit.frags[t].insert_edges.push((27, 3, 9));
        {
            let mut refs: Vec<&mut Fragment<(), u32>> = frags.iter_mut().collect();
            patch_vertex_cut(&mut refs, &edit);
        }
        // Reference: canonical rebuild of the edited graph.
        let mut b = GraphBuilder::new_undirected(50);
        for (u, v, d) in g.all_edges() {
            if u < v {
                b.add_edge(u, v, *d);
            }
        }
        b.add_edge(3, 27, 9);
        let g2 = b.build();
        let expect = crate::partition::build_fragments_vertex_cut_n(
            &g2,
            &crate::partition::vertex_cut_partition(&g2, 4),
            4,
        );
        for (f, e) in frags.iter().zip(&expect) {
            assert_eq!(f.globals(), e.globals(), "frag {} layout", f.id());
            assert_eq!(f.owned_count(), e.owned_count());
            assert_eq!(f.inner_in(), e.inner_in());
            for l in f.local_vertices() {
                let mut a: Vec<_> = f.edges(l).map(|(t, d)| (f.global(t), *d)).collect();
                let mut bb: Vec<_> = e.edges(l).map(|(t, d)| (e.global(t), *d)).collect();
                a.sort_unstable();
                bb.sort_unstable();
                assert_eq!(a, bb, "frag {} vertex {} adjacency", f.id(), f.global(l));
                if f.is_owned(l) {
                    assert_eq!(f.mirror_holders(l), e.mirror_holders(l));
                }
            }
        }
    }

    #[test]
    fn reassemble_roundtrip() {
        let g = crate::generate::small_world(40, 2, 0.1, 9);
        let frags = build_fragments(&g, &hash_partition(&g, 4));
        let view: Vec<&Fragment<(), u32>> = frags.iter().collect();
        let r = reassemble(&view);
        assert_eq!(r.num_vertices(), g.num_vertices());
        assert_eq!(r.num_edges(), g.num_edges());
        for v in g.vertices() {
            // Parallel edges tie under the (src, dst) sort key, so compare
            // the adjacency as a sorted multiset of (target, weight).
            let mut a: Vec<_> = g.edges(v).map(|(t, d)| (t, *d)).collect();
            let mut b: Vec<_> = r.edges(v).map(|(t, d)| (t, *d)).collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
        }
    }
}
