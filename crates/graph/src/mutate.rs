//! In-place mutation of partitioned fragments — the graph-side substrate
//! of the dynamic-graph delta subsystem (`aap-delta`).
//!
//! A batch of graph changes arrives as a [`PartitionEdit`]: per-fragment
//! edge inserts/removes/weight updates plus vertex additions and
//! isolations, already resolved to the fragment that stores each edge
//! (the *owner of the source* under edge-cut). [`apply_partition_edit`]
//! patches the touched fragments in place:
//!
//! * the local CSR adjacency is re-packed from the surviving + inserted
//!   edges (cost `O(|Fi|)` per **touched** fragment, nothing global);
//! * mirrors are re-derived from the new cut edges; mirror gains/losses
//!   at one fragment become holder updates at the owner, keeping the
//!   routing symmetry invariant (`v` mirrored at `Fj` ⟺ `Fj ∈
//!   holders(v)` at the owner);
//! * border sets `Fi.I` / `Fi.O'` are recomputed from the patched
//!   structure;
//! * dense [`crate::RoutingTable`]s are rebuilt **only** for fragments
//!   whose structure changed or whose peers renumbered (a fragment's
//!   table stores destination-local ids, so a peer that gained or lost
//!   locals invalidates the slots pointing at it);
//! * reusable [`EditBuffers`] pool the transient sets, so streaming
//!   many small batches does not re-allocate the lookup structures.
//!
//! Vertex *removal* keeps the dense global id space intact: the vertex
//! stays owned but loses every incident edge (an isolated id). This is
//! what keeps `Assemble` output vectors stable across deltas.
//!
//! Retained per-vertex algorithm state is carried across a mutation by a
//! [`StateRemap`] (old local id → new local id), one per fragment; warm
//! incremental evaluation (`aap-core`'s `WarmStart`) uses it to migrate
//! status variables instead of recomputing them.

use crate::fragment::Fragment;
use crate::partition::routing_table_for;
use crate::{FragId, FxHashMap, FxHashSet, Graph, LocalId, VertexId};
use aap_trace::{cat, pid, Args, Tracer};

/// Maps one fragment's local ids across a structural mutation.
///
/// `map(old) == None` means the old local vanished (a dropped mirror);
/// new locals (fresh mirrors or added vertices) have no preimage and
/// must be initialised by the consumer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StateRemap {
    /// Old local -> new local; `LocalId::MAX` = dropped. Empty when
    /// `identity` (the common untouched-fragment case keeps no table).
    old_to_new: Vec<LocalId>,
    new_local_count: usize,
    identity: bool,
}

impl StateRemap {
    /// The identity remap over `n` locals (fragment untouched).
    pub fn identity(n: usize) -> Self {
        StateRemap { old_to_new: Vec::new(), new_local_count: n, identity: true }
    }

    /// Build from an explicit old→new table (`LocalId::MAX` = dropped).
    pub fn from_table(old_to_new: Vec<LocalId>, new_local_count: usize) -> Self {
        let identity = old_to_new.len() == new_local_count
            && old_to_new.iter().enumerate().all(|(i, &l)| l as usize == i);
        if identity {
            StateRemap::identity(new_local_count)
        } else {
            StateRemap { old_to_new, new_local_count, identity: false }
        }
    }

    /// True if the fragment's local id space is unchanged.
    #[inline]
    pub fn is_identity(&self) -> bool {
        self.identity
    }

    /// Locals before the mutation.
    pub fn old_local_count(&self) -> usize {
        if self.identity {
            self.new_local_count
        } else {
            self.old_to_new.len()
        }
    }

    /// Locals after the mutation.
    pub fn new_local_count(&self) -> usize {
        self.new_local_count
    }

    /// New local id of old local `old`, if it survived.
    #[inline]
    pub fn map(&self, old: LocalId) -> Option<LocalId> {
        if self.identity {
            return Some(old);
        }
        match self.old_to_new[old as usize] {
            LocalId::MAX => None,
            l => Some(l),
        }
    }

    /// Migrate a per-local state vector: surviving locals keep their
    /// value, fresh locals get `default`, dropped values are discarded.
    pub fn map_vec<T: Clone>(&self, mut old: Vec<T>, default: T) -> Vec<T> {
        if self.identity {
            debug_assert_eq!(old.len(), self.new_local_count);
            return old;
        }
        let mut out = vec![default; self.new_local_count];
        for (o, v) in old.drain(..).enumerate() {
            if let Some(n) = self.map(o as LocalId) {
                out[n as usize] = v;
            }
        }
        out
    }
}

/// Direction of one weight overwrite against the stored value — the
/// single classification every layer (in-place apply, global apply,
/// pre-apply strategy resolution) must agree on, so the strategy chosen
/// for a batch and the summary recorded for it can never drift.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WeightChange {
    /// The new weight is strictly smaller (monotone-safe).
    Decreased,
    /// The new weight equals the stored one (a no-op).
    Unchanged,
    /// The new weight is strictly larger **or incomparable** under
    /// `PartialOrd` — either way not monotone-safe.
    Increased,
}

/// Classify a weight overwrite of one stored copy.
pub fn weight_change<E: PartialOrd>(new: &E, old: &E) -> WeightChange {
    match new.partial_cmp(old) {
        Some(std::cmp::Ordering::Less) => WeightChange::Decreased,
        Some(std::cmp::Ordering::Equal) => WeightChange::Unchanged,
        _ => WeightChange::Increased,
    }
}

/// Whether a fragment set stores a directed graph, probed from the
/// first non-empty fragment (an all-empty set defaults to directed —
/// the conservative answer for every caller).
pub fn stored_directed<V, E>(frags: &[&Fragment<V, E>]) -> bool {
    frags
        .iter()
        .find(|f| f.local_count() > 0)
        .map(|f| f.local_graph().is_directed())
        .unwrap_or(true)
}

/// Shape of one delta batch, for deciding how warm incremental
/// evaluation stays exact (monotone-contracting programs handle
/// additions / weight decreases by monotonicity alone; removals and
/// weight increases need an affected-region invalidation plan; see
/// `WarmStart::delta_strategy`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeltaSummary {
    /// Vertices added (logical count).
    pub vertices_added: u64,
    /// Vertices isolated (removal keeps the dense id).
    pub vertices_removed: u64,
    /// Logical edges added.
    pub edges_added: u64,
    /// Logical edges removed.
    pub edges_removed: u64,
    /// Weight updates that decreased a stored weight.
    pub weights_decreased: u64,
    /// Weight updates that increased a stored weight (or were
    /// incomparable under `PartialOrd`).
    pub weights_increased: u64,
}

impl DeltaSummary {
    /// True if the delta can only *shrink* path costs / merge components:
    /// no removals and no weight increases. Monotone-decreasing programs
    /// (`min`-aggregated SSSP, CC) re-evaluate such deltas exactly from
    /// the affected region.
    pub fn is_monotone_decreasing(&self) -> bool {
        self.vertices_removed == 0 && self.edges_removed == 0 && self.weights_increased == 0
    }

    /// True if nothing changed.
    pub fn is_empty(&self) -> bool {
        *self == DeltaSummary::default()
    }
}

/// Edits destined for one fragment, in **global** id space. Edge entries
/// must be *stored* directed edges whose source is owned by the fragment
/// (undirected logical edges appear twice, once per stored direction, at
/// the respective source owners).
#[derive(Debug, Clone)]
pub struct FragmentEdit<V, E> {
    /// New vertices owned here (globally fresh ids).
    pub add_owned: Vec<(VertexId, V)>,
    /// Stored edges to insert.
    pub insert_edges: Vec<(VertexId, VertexId, E)>,
    /// Stored edges to remove — drops **all** parallel `(u, v)` copies.
    pub remove_edges: Vec<(VertexId, VertexId)>,
    /// Weight overwrites, applied to every parallel `(u, v)` copy.
    pub set_weights: Vec<(VertexId, VertexId, E)>,
}

impl<V, E> Default for FragmentEdit<V, E> {
    fn default() -> Self {
        FragmentEdit {
            add_owned: Vec::new(),
            insert_edges: Vec::new(),
            remove_edges: Vec::new(),
            set_weights: Vec::new(),
        }
    }
}

impl<V, E> FragmentEdit<V, E> {
    /// True if this fragment has no direct edits.
    pub fn is_empty(&self) -> bool {
        self.add_owned.is_empty()
            && self.insert_edges.is_empty()
            && self.remove_edges.is_empty()
            && self.set_weights.is_empty()
    }
}

/// A delta batch resolved against an edge-cut partition: per-fragment
/// edits plus the cross-fragment context the patch needs.
#[derive(Debug, Clone)]
pub struct PartitionEdit<V, E> {
    /// One edit per fragment (`frags[i]` applies to fragment `i`).
    pub frags: Vec<FragmentEdit<V, E>>,
    /// Vertices to isolate: every incident edge is dropped, the dense id
    /// survives as an edgeless owned vertex.
    pub removed_vertices: FxHashSet<VertexId>,
    /// Owner fragment of every vertex mentioned anywhere in the edit
    /// (existing or newly added).
    pub owners: FxHashMap<VertexId, FragId>,
    /// Fragments whose core (vertices/edges) must be re-derived. Must
    /// cover every fragment with a non-empty edit, plus the owner and all
    /// mirror holders of every removed vertex.
    pub touched: Vec<bool>,
}

/// Result of [`apply_partition_edit`]: everything a warm-start engine run
/// needs to pick up from retained state.
#[derive(Debug, Clone)]
pub struct AppliedEdit {
    /// Per-fragment local-id migration for retained state.
    pub remaps: Vec<StateRemap>,
    /// Per-fragment delta-affected vertices (new local ids, sorted):
    /// endpoints of edited edges, vertices new to the fragment, and owned
    /// vertices whose holder set grew. These seed the first warm round.
    pub seeds: Vec<Vec<LocalId>>,
    /// Weight updates that decreased a stored weight.
    pub weights_decreased: u64,
    /// Weight updates that increased a stored weight (or incomparable).
    pub weights_increased: u64,
    /// Per-fragment: whether the fragment's *persisted* bytes changed —
    /// its core was repacked (or, on the weight-only path, it held
    /// patched copies). Routing-only rebuilds are excluded: routing
    /// tables are derivable and never persisted (`aap-snapshot` loaders
    /// re-derive them). This is the dirty set differential checkpoints
    /// accumulate.
    pub changed: Vec<bool>,
}

/// Reusable buffers for [`apply_partition_edit`] — the delta-side analog
/// of `aap-core`'s pooled `Scratch`: lookup sets keep their capacity
/// across batches, so streaming many small deltas performs no
/// steady-state re-allocation of the transient structures. The pool
/// holds one buffer set per apply worker; [`apply_partition_edit_threads`]
/// splits it so each scoped thread repacks with a private set.
#[derive(Debug, Default)]
pub struct EditBuffers {
    workers: Vec<WorkerBufs>,
}

impl EditBuffers {
    /// At least `n` per-worker buffer sets; the pool grows on first use
    /// and retains capacity afterwards.
    fn split(&mut self, n: usize) -> &mut [WorkerBufs] {
        if self.workers.len() < n {
            self.workers.resize_with(n, WorkerBufs::default);
        }
        &mut self.workers[..n]
    }
}

/// One apply worker's pooled transient sets.
#[derive(Debug, Default)]
struct WorkerBufs {
    removed_pairs: FxHashSet<(VertexId, VertexId)>,
    owned_set: FxHashSet<VertexId>,
    seed_globals: FxHashSet<VertexId>,
    holder_removals: FxHashSet<(VertexId, FragId)>,
}

struct Core<V, E> {
    owned: Vec<(VertexId, V)>,
    edges: Vec<(VertexId, VertexId, E)>,
    mirrors: Vec<VertexId>,
    mirror_owner: Vec<FragId>,
    mirror_data: Vec<V>,
}

/// A mirror-set diff produced by phase 1, delivered to the owner in
/// phase 2: vertex `.0`'s mirror at fragment `.1` was gained (`true`) or
/// lost (`false`).
type HolderEvent = (VertexId, FragId, bool);

/// Phase-1 output for one touched fragment: the derived core, its
/// owner-routed holder events, and the weight-direction tallies.
type DerivedCore<V, E> = (Core<V, E>, Vec<(FragId, HolderEvent)>, u64, u64);

/// A phase-2 work item: fragment index, its disjoint `&mut`, and the
/// core derived for it in phase 1 (`None` for holder-events-only
/// rebuilds).
type CommitTask<'a, V, E> = (usize, &'a mut Fragment<V, E>, Option<Core<V, E>>);

/// Phase 1 for one touched fragment: derive the new core (owned list,
/// stored edges, mirrors) in global id space and diff the mirror set
/// against the old one, emitting `(owner, event)` pairs the orchestrator
/// routes to the owners. Reads fragments only (`view`), so touched
/// fragments fan out across scoped threads.
fn derive_core<V, E>(
    i: usize,
    view: &[&Fragment<V, E>],
    edit: &PartitionEdit<V, E>,
    bufs: &mut WorkerBufs,
) -> DerivedCore<V, E>
where
    V: Clone,
    E: Clone + PartialOrd,
{
    let fe = &edit.frags[i];
    let f: &Fragment<V, E> = view[i];
    let mut weights_decreased = 0u64;
    let mut weights_increased = 0u64;
    let mut events: Vec<(FragId, HolderEvent)> = Vec::new();

    // New owned list (sorted by global id; removals keep the id).
    let mut owned: Vec<(VertexId, V)> = f
        .owned_vertices()
        .map(|l| (f.global(l), f.node(l).clone()))
        .chain(fe.add_owned.iter().cloned())
        .collect();
    owned.sort_unstable_by_key(|&(g, _)| g);
    debug_assert!(owned.windows(2).all(|w| w[0].0 < w[1].0), "duplicate owned vertex");

    bufs.owned_set.clear();
    bufs.owned_set.extend(owned.iter().map(|&(g, _)| g));

    bufs.removed_pairs.clear();
    bufs.removed_pairs.extend(fe.remove_edges.iter().copied());
    let setw: FxHashMap<(VertexId, VertexId), &E> =
        fe.set_weights.iter().map(|(u, v, w)| ((*u, *v), w)).collect();

    // Surviving + updated + inserted stored edges.
    let mut edges: Vec<(VertexId, VertexId, E)> =
        Vec::with_capacity(f.edge_count() + fe.insert_edges.len());
    for u in f.owned_vertices() {
        let gu = f.global(u);
        if edit.removed_vertices.contains(&gu) {
            continue;
        }
        for (t, d) in f.edges(u) {
            let gt = f.global(t);
            if edit.removed_vertices.contains(&gt) || bufs.removed_pairs.contains(&(gu, gt)) {
                continue;
            }
            if let Some(w) = setw.get(&(gu, gt)) {
                match weight_change(*w, d) {
                    WeightChange::Decreased => weights_decreased += 1,
                    WeightChange::Unchanged => {}
                    WeightChange::Increased => weights_increased += 1,
                }
                edges.push((gu, gt, (*w).clone()));
            } else {
                edges.push((gu, gt, d.clone()));
            }
        }
    }
    for (u, v, d) in &fe.insert_edges {
        assert!(bufs.owned_set.contains(u), "inserted edge ({u}, {v}) not owned at frag {i}");
        assert!(
            !edit.removed_vertices.contains(u) && !edit.removed_vertices.contains(v),
            "inserted edge ({u}, {v}) touches a removed vertex"
        );
        edges.push((*u, *v, d.clone()));
    }
    edges.sort_unstable_by_key(|&(u, v, _)| ((u as u64) << 32) | v as u64);

    // New mirror set + owners.
    let mut mirrors: Vec<VertexId> =
        edges.iter().map(|&(_, t, _)| t).filter(|t| !bufs.owned_set.contains(t)).collect();
    mirrors.sort_unstable();
    mirrors.dedup();
    let owner_of = |g: VertexId| -> FragId {
        if let Some(l) = f.local(g) {
            if !f.is_owned(l) {
                return f.owner(l);
            }
        }
        *edit.owners.get(&g).unwrap_or_else(|| panic!("owner of vertex {g} not resolved"))
    };
    let mirror_owner: Vec<FragId> = mirrors.iter().map(|&g| owner_of(g)).collect();
    // Node data for mirrors: carry the old copy; fresh mirrors clone
    // from the owner fragment (or, for vertices added in this very
    // batch, from the owner's pending `add_owned` entry).
    let mirror_data: Vec<V> = mirrors
        .iter()
        .zip(&mirror_owner)
        .map(|(&g, &o)| {
            if let Some(l) = f.local(g) {
                return f.node(l).clone();
            }
            if let Some(l) = view[o as usize].local(g) {
                return view[o as usize].node(l).clone();
            }
            edit.frags[o as usize]
                .add_owned
                .iter()
                .find(|&&(v, _)| v == g)
                .map(|(_, d)| d.clone())
                .unwrap_or_else(|| panic!("no node data for new mirror {g}"))
        })
        .collect();

    // Mirror diff -> holder events at the owners.
    let old_mirrors = &f.globals()[f.owned_count()..];
    let (mut a, mut b) = (0usize, 0usize);
    while a < old_mirrors.len() || b < mirrors.len() {
        match (old_mirrors.get(a), mirrors.get(b)) {
            (Some(&og), Some(&ng)) if og == ng => {
                a += 1;
                b += 1;
            }
            (Some(&og), Some(&ng)) if og < ng => {
                events.push((owner_of(og), (og, i as FragId, false)));
                a += 1;
            }
            (Some(_), Some(&ng)) => {
                events.push((mirror_owner[b], (ng, i as FragId, true)));
                b += 1;
            }
            (Some(&og), None) => {
                events.push((owner_of(og), (og, i as FragId, false)));
                a += 1;
            }
            (None, Some(&ng)) => {
                events.push((mirror_owner[b], (ng, i as FragId, true)));
                b += 1;
            }
            (None, None) => unreachable!(),
        }
    }

    (
        Core { owned, edges, mirrors, mirror_owner, mirror_data },
        events,
        weights_decreased,
        weights_increased,
    )
}

/// Phase 2 for one fragment that must change: rebuild from its derived
/// core or, when only the holder lists moved, splice the border
/// structure without renumbering. Touches `frag` alone, so changed
/// fragments fan out across scoped threads. Returns the state remap and
/// the sorted seed set (new local ids).
fn commit_fragment<V, E>(
    frag: &mut Fragment<V, E>,
    fe: &FragmentEdit<V, E>,
    core: Option<Core<V, E>>,
    events: &[HolderEvent],
    bufs: &mut WorkerBufs,
) -> (StateRemap, Vec<LocalId>)
where
    V: Clone,
    E: Clone + PartialOrd,
{
    let mut seeds: Vec<LocalId> = Vec::new();

    // Holder pairs (vertex, holder fragment), post-events, sorted.
    let mut pairs: Vec<(VertexId, FragId)> = frag
        .owned_vertices()
        .flat_map(|l| {
            let g = frag.global(l);
            frag.mirror_holders(l).iter().map(move |&h| (g, h))
        })
        .collect();
    bufs.holder_removals.clear();
    for &(v, h, add) in events {
        if add {
            pairs.push((v, h));
        } else {
            bufs.holder_removals.insert((v, h));
        }
    }
    if !bufs.holder_removals.is_empty() {
        // One linear pass, not one retain() per event — a batch that
        // prunes a hub's cut edges would otherwise go quadratic.
        pairs.retain(|p| !bufs.holder_removals.contains(p));
    }
    pairs.sort_unstable();
    pairs.dedup();

    let remap;
    match core {
        None => {
            // Border-only splice: the local id space is unchanged.
            let owned_n = frag.owned_count();
            let mut holder_offsets = vec![0u32; owned_n + 1];
            let mut holders = Vec::with_capacity(pairs.len());
            let mut inner_in = Vec::new();
            for &(v, h) in &pairs {
                let l = frag.local(v).expect("holder pair names an owned vertex");
                debug_assert!(frag.is_owned(l));
                holder_offsets[l as usize + 1] += 1;
                holders.push(h);
            }
            for l in 1..=owned_n {
                holder_offsets[l] += holder_offsets[l - 1];
            }
            for l in 0..owned_n {
                if holder_offsets[l + 1] > holder_offsets[l] {
                    inner_in.push(l as LocalId);
                }
            }
            remap = StateRemap::identity(frag.local_count());
            // Owned vertices that gained a holder must re-announce
            // their value (the new mirror starts uninitialised).
            for &(v, _, add) in events {
                if add {
                    seeds.push(frag.local(v).expect("owned here"));
                }
            }
            frag.replace_borders(inner_in, holder_offsets, holders);
        }
        Some(core) => {
            let old_globals = frag.globals().to_vec();
            let id = frag.id();
            let num_frags = frag.num_frags();
            let directed = frag.local_graph().is_directed();

            let Core { owned, edges, mirrors, mirror_owner, mirror_data } = core;
            let owned_n = owned.len();
            let n_local = owned_n + mirrors.len();
            let mut g2l: FxHashMap<VertexId, LocalId> = FxHashMap::default();
            g2l.reserve(n_local);
            let mut globals = Vec::with_capacity(n_local);
            let mut node_data: Vec<V> = Vec::with_capacity(n_local);
            for (g, d) in owned {
                g2l.insert(g, globals.len() as LocalId);
                globals.push(g);
                node_data.push(d);
            }
            for (&g, d) in mirrors.iter().zip(mirror_data) {
                g2l.insert(g, globals.len() as LocalId);
                globals.push(g);
                node_data.push(d);
            }

            // Local CSR over the new id space.
            let mut offsets = vec![0usize; n_local + 1];
            for &(u, _, _) in &edges {
                offsets[g2l[&u] as usize + 1] += 1;
            }
            for l in 1..=n_local {
                offsets[l] += offsets[l - 1];
            }
            let mut cursor = offsets.clone();
            let mut targets = vec![0 as LocalId; edges.len()];
            let mut slots: Vec<Option<E>> = vec![None; edges.len()];
            let mut inner_out_set = vec![false; owned_n];
            for (u, v, d) in edges {
                let lu = g2l[&u] as usize;
                let lv = g2l[&v];
                if lv as usize >= owned_n {
                    inner_out_set[lu] = true;
                }
                targets[cursor[lu]] = lv;
                slots[cursor[lu]] = Some(d);
                cursor[lu] += 1;
            }
            let edge_data: Vec<E> =
                slots.into_iter().map(|s| s.expect("every slot filled")).collect();
            let local_graph = Graph::from_parts(directed, node_data, offsets, targets, edge_data);

            let inner_out: Vec<LocalId> = inner_out_set
                .iter()
                .enumerate()
                .filter(|&(_, &b)| b)
                .map(|(l, _)| l as LocalId)
                .collect();
            let mut holder_offsets = vec![0u32; owned_n + 1];
            let mut holders = Vec::with_capacity(pairs.len());
            let mut inner_in = Vec::new();
            for &(v, h) in &pairs {
                let l = g2l[&v];
                debug_assert!((l as usize) < owned_n, "holder pair for non-owned vertex {v}");
                holder_offsets[l as usize + 1] += 1;
                holders.push(h);
            }
            for l in 1..=owned_n {
                holder_offsets[l] += holder_offsets[l - 1];
            }
            for l in 0..owned_n {
                if holder_offsets[l + 1] > holder_offsets[l] {
                    inner_in.push(l as LocalId);
                }
            }

            // Remap + seeds (new local ids).
            let table: Vec<LocalId> =
                old_globals.iter().map(|g| g2l.get(g).copied().unwrap_or(LocalId::MAX)).collect();
            remap = StateRemap::from_table(table, n_local);
            bufs.seed_globals.clear();
            for (u, v, _) in fe.insert_edges.iter().chain(fe.set_weights.iter()) {
                bufs.seed_globals.insert(*u);
                bufs.seed_globals.insert(*v);
            }
            for (u, v) in &fe.remove_edges {
                bufs.seed_globals.insert(*u);
                bufs.seed_globals.insert(*v);
            }
            for (v, _) in &fe.add_owned {
                bufs.seed_globals.insert(*v);
            }
            for &(v, _, add) in events {
                if add {
                    bufs.seed_globals.insert(v);
                }
            }
            // Vertices new to this fragment (fresh mirrors).
            for (&g, &l) in g2l.iter() {
                if frag.local(g).is_none() {
                    seeds.push(l);
                }
            }
            for g in bufs.seed_globals.drain() {
                if let Some(&l) = g2l.get(&g) {
                    seeds.push(l);
                }
            }

            *frag = Fragment::from_parts(
                id,
                num_frags,
                false,
                local_graph,
                globals,
                owned_n,
                inner_in,
                inner_out,
                mirror_owner,
                holder_offsets,
                holders,
            );
        }
    }
    seeds.sort_unstable();
    seeds.dedup();
    (remap, seeds)
}

/// Phase 3 planning: which fragments need their routing table rebuilt —
/// every patched one, plus every peer whose destination list intersects
/// a renumbered fragment (tables store destination-local ids).
fn routing_targets(
    old_dests: &[Vec<FragId>],
    remaps: &[StateRemap],
    mut rebuilt: Vec<bool>,
) -> Vec<bool> {
    for j in 0..rebuilt.len() {
        if !rebuilt[j] && old_dests[j].iter().any(|&d| !remaps[d as usize].is_identity()) {
            rebuilt[j] = true;
        }
    }
    rebuilt
}

/// True when the batch is pure weight overwrites — no structural change
/// anywhere. Such batches keep every id space, border set, mirror set,
/// and routing table bit-for-bit intact, so the apply can patch stored
/// weights in place instead of repacking CSRs.
fn is_weight_only<V, E>(edit: &PartitionEdit<V, E>) -> bool {
    edit.removed_vertices.is_empty()
        && edit.frags.iter().all(|fe| {
            fe.add_owned.is_empty() && fe.insert_edges.is_empty() && fe.remove_edges.is_empty()
        })
}

/// The weight-only fast path: overwrite the stored copies in place.
/// Beyond the returned [`AppliedEdit`] this allocates nothing in steady
/// state (the pooled seen-set retains capacity) — the case a stream of
/// weight updates hits every batch (see `tests/alloc_apply.rs`).
fn apply_weight_only<V, E>(
    frags: &mut [&mut Fragment<V, E>],
    edit: &PartitionEdit<V, E>,
    bufs: &mut EditBuffers,
) -> AppliedEdit
where
    V: Clone,
    E: Clone + PartialOrd,
{
    let m = frags.len();
    let wb = &mut bufs.split(1)[0];
    let mut remaps: Vec<StateRemap> = Vec::with_capacity(m);
    let mut seeds: Vec<Vec<LocalId>> = vec![Vec::new(); m];
    let mut weights_decreased = 0u64;
    let mut weights_increased = 0u64;
    for i in 0..m {
        remaps.push(StateRemap::identity(frags[i].local_count()));
        let fe = &edit.frags[i];
        if !edit.touched[i] {
            assert!(fe.is_empty(), "edited fragment {i} not marked touched");
            continue;
        }
        // The repack path resolves duplicate (u, v) overwrites through a
        // last-entry-wins map; replicate that by walking entries
        // newest-first with a pooled seen-set (`removed_pairs` doubles as
        // the scratch — the weight-only path has no removals).
        wb.removed_pairs.clear();
        for (u, v, w) in fe.set_weights.iter().rev() {
            if !wb.removed_pairs.insert((*u, *v)) {
                continue;
            }
            let (Some(lu), Some(lv)) = (frags[i].local(*u), frags[i].local(*v)) else {
                continue;
            };
            // Patch every stored parallel (u, v) copy, counting the
            // direction of each overwrite exactly like the repack path.
            let (targets, data) = frags[i].adjacency_mut(lu);
            for (t, d) in targets.iter().zip(data.iter_mut()) {
                if *t == lv {
                    match weight_change(w, d) {
                        WeightChange::Decreased => weights_decreased += 1,
                        WeightChange::Unchanged => {}
                        WeightChange::Increased => weights_increased += 1,
                    }
                    *d = w.clone();
                }
            }
        }
        // Seeds: endpoints of every named edge with a local copy here —
        // the same set the repack path derives via `seed_globals`.
        for (u, v, _) in &fe.set_weights {
            if let Some(l) = frags[i].local(*u) {
                seeds[i].push(l);
            }
            if let Some(l) = frags[i].local(*v) {
                seeds[i].push(l);
            }
        }
        seeds[i].sort_unstable();
        seeds[i].dedup();
    }
    let changed = edit.touched.clone();
    AppliedEdit { remaps, seeds, weights_decreased, weights_increased, changed }
}

/// Apply one resolved delta batch to an edge-cut fragment set, in place.
///
/// Fragments not named by the edit (directly or through holder/renumber
/// dependencies) are untouched — no global rebuild happens. Panics on
/// malformed edits (edges at the wrong fragment, unknown owners,
/// non-contiguous new vertex ids); `aap-delta`'s resolver upholds these.
///
/// This is the serial driver; [`apply_partition_edit_threads`] fans the
/// per-fragment phases out over scoped threads with a byte-identical
/// result.
pub fn apply_partition_edit<V, E>(
    frags: &mut [&mut Fragment<V, E>],
    edit: &PartitionEdit<V, E>,
    bufs: &mut EditBuffers,
) -> AppliedEdit
where
    V: Clone,
    E: Clone + PartialOrd,
{
    apply_partition_edit_traced(frags, edit, bufs, &Tracer::default())
}

/// [`apply_partition_edit`] emitting a per-fragment `repack` span (on
/// the delta process track, one tid per fragment) around each
/// fragment commit. The untraced entry point delegates here with a
/// disabled tracer, so the instrumentation costs one branch per
/// repacked fragment when off.
pub fn apply_partition_edit_traced<V, E>(
    frags: &mut [&mut Fragment<V, E>],
    edit: &PartitionEdit<V, E>,
    bufs: &mut EditBuffers,
    tracer: &Tracer,
) -> AppliedEdit
where
    V: Clone,
    E: Clone + PartialOrd,
{
    let m = frags.len();
    assert_eq!(edit.frags.len(), m, "one FragmentEdit per fragment");
    assert_eq!(edit.touched.len(), m);
    assert!(frags.iter().all(|f| !f.is_vertex_cut()), "in-place apply is edge-cut only");

    if is_weight_only(edit) {
        return apply_weight_only(frags, edit, bufs);
    }

    // Old destination lists, for the renumber-dependency pass below.
    let old_dests: Vec<Vec<FragId>> = frags.iter().map(|f| f.routing().dests().to_vec()).collect();

    // Phase 1: derive cores + holder events (see `derive_core`).
    let mut cores: Vec<Option<Core<V, E>>> = (0..m).map(|_| None).collect();
    let mut holder_events: Vec<Vec<HolderEvent>> = vec![Vec::new(); m];
    let mut weights_decreased = 0u64;
    let mut weights_increased = 0u64;
    {
        let wb = &mut bufs.split(1)[0];
        let view: Vec<&Fragment<V, E>> = frags.iter().map(|f| &**f).collect();
        for (i, core_slot) in cores.iter_mut().enumerate() {
            if !edit.touched[i] {
                assert!(edit.frags[i].is_empty(), "edited fragment {i} not marked touched");
                continue;
            }
            let (core, events, wdec, winc) = derive_core(i, &view, edit, wb);
            for (owner, ev) in events {
                holder_events[owner as usize].push(ev);
            }
            weights_decreased += wdec;
            weights_increased += winc;
            *core_slot = Some(core);
        }
    }

    // Phase 2: commit (see `commit_fragment`).
    let mut remaps: Vec<StateRemap> = Vec::with_capacity(m);
    let mut seeds: Vec<Vec<LocalId>> = vec![Vec::new(); m];
    let mut rebuilt = vec![false; m];
    {
        let traced = tracer.enabled();
        let wb = &mut bufs.split(1)[0];
        for i in 0..m {
            if cores[i].is_none() && holder_events[i].is_empty() {
                remaps.push(StateRemap::identity(frags[i].local_count()));
                continue;
            }
            rebuilt[i] = true;
            let core = cores[i].take();
            if traced {
                tracer.begin(
                    pid::DELTA,
                    i as u32,
                    cat::APPLY,
                    "repack",
                    Args::new().with("frag", i).with("locals", frags[i].local_count()),
                );
            }
            let (remap, s) = commit_fragment(frags[i], &edit.frags[i], core, &holder_events[i], wb);
            if traced {
                tracer.end(
                    pid::DELTA,
                    i as u32,
                    cat::APPLY,
                    "repack",
                    Args::new().with("locals", frags[i].local_count()).with("seeds", s.len()),
                );
            }
            remaps.push(remap);
            seeds[i] = s;
        }
    }

    // Phase 3: routing (see `routing_targets`).
    let changed = rebuilt.clone();
    let needs_routing = routing_targets(&old_dests, &remaps, rebuilt);
    {
        let view: Vec<&Fragment<V, E>> = frags.iter().map(|f| &**f).collect();
        let tables: Vec<(usize, crate::RoutingTable)> = needs_routing
            .iter()
            .enumerate()
            .filter(|&(_, &need)| need)
            .map(|(j, _)| (j, routing_table_for(view[j], &|d, g| view[d as usize].local(g))))
            .collect();
        drop(view);
        for (j, t) in tables {
            frags[j].set_routing(t);
        }
    }

    AppliedEdit { remaps, seeds, weights_decreased, weights_increased, changed }
}

/// [`apply_partition_edit`] with the per-fragment work of all three
/// phases fanned out over up to `threads` scoped worker threads: touched
/// fragments derive their cores against a shared read-only view, changed
/// fragments repack behind disjoint `&mut Fragment`s, and routing tables
/// rebuild from the committed view. Each worker patches through its own
/// pooled `WorkerBufs`, and the cross-fragment holder events are
/// merged between phases in ascending fragment order — the one place
/// workers could have raced on ordering — so the result is
/// **byte-identical to the serial path** (the mutate proptests pin
/// this). `threads <= 1`, or a batch touching a single fragment, falls
/// back to the serial driver.
pub fn apply_partition_edit_threads<V, E>(
    frags: &mut [&mut Fragment<V, E>],
    edit: &PartitionEdit<V, E>,
    bufs: &mut EditBuffers,
    threads: usize,
) -> AppliedEdit
where
    V: Clone + Send + Sync,
    E: Clone + PartialOrd + Send + Sync,
{
    apply_partition_edit_threads_traced(frags, edit, bufs, threads, &Tracer::default())
}

/// [`apply_partition_edit_threads`] emitting per-fragment `repack`
/// spans (delta track, tid = fragment id) from whichever worker commits
/// each fragment. Serial fallbacks keep tracing: the `threads <= 1` and
/// single-touched-fragment paths route through
/// [`apply_partition_edit_traced`], so repack spans appear regardless
/// of which driver ends up running.
pub fn apply_partition_edit_threads_traced<V, E>(
    frags: &mut [&mut Fragment<V, E>],
    edit: &PartitionEdit<V, E>,
    bufs: &mut EditBuffers,
    threads: usize,
    tracer: &Tracer,
) -> AppliedEdit
where
    V: Clone + Send + Sync,
    E: Clone + PartialOrd + Send + Sync,
{
    let m = frags.len();
    assert_eq!(edit.frags.len(), m, "one FragmentEdit per fragment");
    assert_eq!(edit.touched.len(), m);
    assert!(frags.iter().all(|f| !f.is_vertex_cut()), "in-place apply is edge-cut only");

    if is_weight_only(edit) {
        // In-place weight patching touches a handful of cache lines per
        // entry; thread fan-out can only lose.
        return apply_weight_only(frags, edit, bufs);
    }
    let touched: Vec<usize> = (0..m).filter(|&i| edit.touched[i]).collect();
    let threads = threads.min(touched.len()).max(1);
    if threads <= 1 {
        return apply_partition_edit_traced(frags, edit, bufs, tracer);
    }
    for i in 0..m {
        if !edit.touched[i] {
            assert!(edit.frags[i].is_empty(), "edited fragment {i} not marked touched");
        }
    }

    let old_dests: Vec<Vec<FragId>> = frags.iter().map(|f| f.routing().dests().to_vec()).collect();

    // Phase 1: core derivation over the shared pre-apply view. Workers
    // take touched fragments round-robin and write disjoint outputs.
    let mut cores: Vec<Option<Core<V, E>>> = (0..m).map(|_| None).collect();
    let mut holder_events: Vec<Vec<HolderEvent>> = vec![Vec::new(); m];
    let mut weights_decreased = 0u64;
    let mut weights_increased = 0u64;
    {
        let view: Vec<&Fragment<V, E>> = frags.iter().map(|f| &**f).collect();
        let view = &view[..];
        let touched = &touched[..];
        let wbufs = bufs.split(threads);
        let mut results: Vec<(usize, DerivedCore<V, E>)> = std::thread::scope(|s| {
            let handles: Vec<_> = wbufs
                .iter_mut()
                .enumerate()
                .map(|(k, wb)| {
                    s.spawn(move || {
                        let mut out = Vec::new();
                        let mut idx = k;
                        while idx < touched.len() {
                            let i = touched[idx];
                            out.push((i, derive_core(i, view, edit, wb)));
                            idx += threads;
                        }
                        out
                    })
                })
                .collect();
            let mut all = Vec::with_capacity(touched.len());
            for h in handles {
                all.extend(h.join().expect("apply worker panicked"));
            }
            all
        });
        // Merge in fragment order so the per-owner holder-event streams
        // match the serial pass exactly.
        results.sort_unstable_by_key(|r| r.0);
        for (i, (core, events, wdec, winc)) in results {
            for (owner, ev) in events {
                holder_events[owner as usize].push(ev);
            }
            weights_decreased += wdec;
            weights_increased += winc;
            cores[i] = Some(core);
        }
    }

    // Phase 2: changed fragments repack behind disjoint `&mut`s, in
    // contiguous chunks; untouched fragments settle to identity inline.
    let mut remaps_opt: Vec<Option<StateRemap>> = (0..m).map(|_| None).collect();
    let mut seeds: Vec<Vec<LocalId>> = vec![Vec::new(); m];
    let mut rebuilt = vec![false; m];
    {
        let mut work: Vec<CommitTask<'_, V, E>> = Vec::new();
        for (i, f) in frags.iter_mut().enumerate() {
            if cores[i].is_none() && holder_events[i].is_empty() {
                remaps_opt[i] = Some(StateRemap::identity(f.local_count()));
            } else {
                rebuilt[i] = true;
                let core = cores[i].take();
                work.push((i, &mut **f, core));
            }
        }
        let events = &holder_events[..];
        let per = work.len().div_ceil(threads).max(1);
        let wbufs = bufs.split(threads);
        let traced = tracer.enabled();
        let results: Vec<(usize, StateRemap, Vec<LocalId>)> = std::thread::scope(|s| {
            let handles: Vec<_> = work
                .chunks_mut(per)
                .zip(wbufs.iter_mut())
                .map(|(chunk, wb)| {
                    s.spawn(move || {
                        chunk
                            .iter_mut()
                            .map(|(i, frag, core)| {
                                if traced {
                                    tracer.begin(
                                        pid::DELTA,
                                        *i as u32,
                                        cat::APPLY,
                                        "repack",
                                        Args::new()
                                            .with("frag", *i)
                                            .with("locals", frag.local_count()),
                                    );
                                }
                                let (remap, sds) = commit_fragment(
                                    &mut **frag,
                                    &edit.frags[*i],
                                    core.take(),
                                    &events[*i],
                                    wb,
                                );
                                if traced {
                                    tracer.end(
                                        pid::DELTA,
                                        *i as u32,
                                        cat::APPLY,
                                        "repack",
                                        Args::new()
                                            .with("locals", frag.local_count())
                                            .with("seeds", sds.len()),
                                    );
                                }
                                (*i, remap, sds)
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles.into_iter().flat_map(|h| h.join().expect("apply worker panicked")).collect()
        });
        for (i, remap, sds) in results {
            remaps_opt[i] = Some(remap);
            seeds[i] = sds;
        }
    }
    let remaps: Vec<StateRemap> =
        remaps_opt.into_iter().map(|r| r.expect("every fragment remapped")).collect();

    // Phase 3: routing tables over the committed shared view.
    let changed = rebuilt.clone();
    let needs_routing = routing_targets(&old_dests, &remaps, rebuilt);
    let tables: Vec<(usize, crate::RoutingTable)> = {
        let view: Vec<&Fragment<V, E>> = frags.iter().map(|f| &**f).collect();
        let view = &view[..];
        let targets: Vec<usize> =
            needs_routing.iter().enumerate().filter(|&(_, &n)| n).map(|(j, _)| j).collect();
        let per = targets.len().div_ceil(threads).max(1);
        std::thread::scope(|s| {
            let handles: Vec<_> = targets
                .chunks(per)
                .map(|chunk| {
                    s.spawn(move || {
                        chunk
                            .iter()
                            .map(|&j| {
                                (j, routing_table_for(view[j], &|d, g| view[d as usize].local(g)))
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles.into_iter().flat_map(|h| h.join().expect("apply worker panicked")).collect()
        })
    };
    for (j, t) in tables {
        frags[j].set_routing(t);
    }

    AppliedEdit { remaps, seeds, weights_decreased, weights_increased, changed }
}

/// Reconstruct the global graph from a fragment set (each stored edge
/// lives in exactly one fragment; node data at the owner). Used by the
/// vertex-cut delta path, which re-partitions instead of patching.
pub fn reassemble<V: Clone, E: Clone>(frags: &[&Fragment<V, E>]) -> Graph<V, E> {
    let n: usize = frags.iter().map(|f| f.owned_count()).sum();
    let directed = frags
        .iter()
        .find(|f| f.local_count() > 0)
        .map(|f| f.local_graph().is_directed())
        .unwrap_or(true);
    let mut nodes: Vec<Option<V>> = vec![None; n];
    let mut edges: Vec<(VertexId, VertexId, E)> = Vec::new();
    for f in frags {
        for l in f.owned_vertices() {
            nodes[f.global(l) as usize] = Some(f.node(l).clone());
        }
        for l in f.local_vertices() {
            let gu = f.global(l);
            for (t, d) in f.edges(l) {
                edges.push((gu, f.global(t), d.clone()));
            }
        }
    }
    let node_data: Vec<V> =
        nodes.into_iter().map(|v| v.expect("every vertex owned somewhere")).collect();
    Graph::from_stored_edges(directed, node_data, edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::{build_fragments, build_fragments_n, hash_partition};
    use crate::GraphBuilder;

    fn path4() -> (Graph<(), u32>, Vec<Fragment<(), u32>>) {
        let mut b = GraphBuilder::new_undirected(4);
        b.add_edge(0, 1, 1u32);
        b.add_edge(1, 2, 1);
        b.add_edge(2, 3, 1);
        let g = b.build();
        let frags = build_fragments(&g, &[0, 0, 1, 1]);
        (g, frags)
    }

    fn edit_for(m: usize) -> PartitionEdit<(), u32> {
        PartitionEdit {
            frags: vec![FragmentEdit::default(); m],
            removed_vertices: FxHashSet::default(),
            owners: FxHashMap::default(),
            touched: vec![false; m],
        }
    }

    #[test]
    fn remap_identity_and_table() {
        let id = StateRemap::identity(3);
        assert!(id.is_identity());
        assert_eq!(id.map(2), Some(2));
        assert_eq!(id.map_vec(vec![7, 8, 9], 0), vec![7, 8, 9]);

        let r = StateRemap::from_table(vec![1, LocalId::MAX, 0], 3);
        assert!(!r.is_identity());
        assert_eq!(r.map(0), Some(1));
        assert_eq!(r.map(1), None);
        assert_eq!(r.map_vec(vec![10, 20, 30], 0), vec![30, 10, 0]);

        // A full-coverage in-order table collapses to identity.
        assert!(StateRemap::from_table(vec![0, 1, 2], 3).is_identity());
    }

    #[test]
    fn insert_cross_edge_creates_mirror_and_holder() {
        let (_, mut frags) = path4();
        let mut edit = edit_for(2);
        // New undirected cut edge 0-3: stored 0->3 at frag 0, 3->0 at frag 1.
        edit.frags[0].insert_edges.push((0, 3, 5));
        edit.frags[1].insert_edges.push((3, 0, 5));
        edit.touched = vec![true, true];
        edit.owners.insert(0, 0);
        edit.owners.insert(3, 1);
        let mut refs: Vec<&mut Fragment<(), u32>> = frags.iter_mut().collect();
        let applied = apply_partition_edit(&mut refs, &edit, &mut EditBuffers::default());

        let f0 = &frags[0];
        let m3 = f0.local(3).expect("frag 0 gained a mirror of 3");
        assert!(!f0.is_owned(m3));
        assert_eq!(f0.owner(m3), 1);
        // Owner side: holder list of 3 now includes fragment 0, and 3 is a
        // receiving border vertex.
        let f1 = &frags[1];
        let l3 = f1.local(3).unwrap();
        assert!(f1.is_owned(l3));
        assert!(f1.mirror_holders(l3).contains(&0));
        assert!(f1.inner_in().contains(&l3));
        // Routing agrees with route() on both sides.
        assert!(applied.remaps[0].map(0).is_some());
        assert_eq!(applied.remaps[0].new_local_count(), f0.local_count());
        let (slots, remotes) = f0.routing().fanout(m3);
        assert_eq!(slots.len(), 1);
        assert_eq!(remotes[0], l3);
        // Seeds name the new mirror and the edge endpoints.
        assert!(applied.seeds[0].contains(&m3));
        assert!(applied.seeds[1].contains(&l3));
    }

    #[test]
    fn in_place_matches_full_rebuild() {
        // Random-ish graph, apply inserts + removals, compare with a full
        // build_fragments on the edited global graph.
        let g = crate::generate::small_world(60, 2, 0.2, 5);
        let assignment = hash_partition(&g, 3);
        let mut frags = build_fragments_n(&g, &assignment, 3);

        let mut edit = edit_for(3);
        let inserts: [(VertexId, VertexId, u32); 3] = [(0, 30, 9), (5, 45, 2), (10, 50, 4)];
        let removes: [(VertexId, VertexId); 2] = [(0, 1), (20, 21)];
        for &(u, v, w) in &inserts {
            edit.frags[assignment[u as usize] as usize].insert_edges.push((u, v, w));
            edit.frags[assignment[v as usize] as usize].insert_edges.push((v, u, w));
        }
        for &(u, v) in &removes {
            edit.frags[assignment[u as usize] as usize].remove_edges.push((u, v));
            edit.frags[assignment[v as usize] as usize].remove_edges.push((v, u));
        }
        for v in 0..60u32 {
            edit.owners.insert(v, assignment[v as usize]);
        }
        edit.touched = edit.frags.iter().map(|fe| !fe.is_empty()).collect();
        let mut refs: Vec<&mut Fragment<(), u32>> = frags.iter_mut().collect();
        apply_partition_edit(&mut refs, &edit, &mut EditBuffers::default());

        // Reference: rebuild from the edited global graph.
        let mut b = GraphBuilder::new_undirected(60);
        let removed: FxHashSet<(u32, u32)> =
            removes.iter().flat_map(|&(u, v)| [(u, v), (v, u)]).collect();
        for (u, v, d) in g.all_edges() {
            if u < v && !removed.contains(&(u, v)) {
                b.add_edge(u, v, *d);
            }
        }
        for &(u, v, w) in &inserts {
            b.add_edge(u, v, w);
        }
        let expect = build_fragments_n(&b.build(), &assignment, 3);

        for (f, e) in frags.iter().zip(&expect) {
            assert_eq!(f.owned_count(), e.owned_count());
            assert_eq!(f.globals(), e.globals(), "frag {} locals differ", f.id());
            assert_eq!(f.inner_in(), e.inner_in());
            assert_eq!(f.inner_out(), e.inner_out());
            assert_eq!(f.routing().dests(), e.routing().dests());
            for l in f.local_vertices() {
                let mut a: Vec<_> = f.edges(l).map(|(t, d)| (f.global(t), *d)).collect();
                let mut bb: Vec<_> = e.edges(l).map(|(t, d)| (e.global(t), *d)).collect();
                a.sort_unstable();
                bb.sort_unstable();
                assert_eq!(a, bb, "frag {} vertex {} adjacency", f.id(), f.global(l));
                assert_eq!(f.routing().fanout(l), e.routing().fanout(l));
                if f.is_owned(l) {
                    assert_eq!(f.mirror_holders(l), e.mirror_holders(l));
                }
            }
        }
    }

    #[test]
    fn remove_vertex_isolates_and_drops_mirrors() {
        let (_, mut frags) = path4();
        let mut edit = edit_for(2);
        // Remove vertex 2: owner is frag 1; frag 0 holds a mirror of it.
        edit.removed_vertices.insert(2);
        edit.touched = vec![true, true];
        edit.owners.insert(2, 1);
        let mut refs: Vec<&mut Fragment<(), u32>> = frags.iter_mut().collect();
        let applied = apply_partition_edit(&mut refs, &edit, &mut EditBuffers::default());

        // Frag 0 lost its mirror of 2 (renumbered).
        assert!(frags[0].local(2).is_none());
        assert!(!applied.remaps[0].is_identity());
        // Frag 1 keeps vertex 2 as an isolated owned vertex.
        let l2 = frags[1].local(2).expect("dense id survives");
        assert!(frags[1].is_owned(l2));
        assert!(frags[1].neighbors(l2).is_empty());
        assert!(frags[1].mirror_holders(l2).is_empty());
        // No routing fanout remains for it.
        assert_eq!(frags[1].routing().fanout_len(l2), 0);
    }

    #[test]
    fn weight_update_keeps_ids_and_counts_direction() {
        let (_, mut frags) = path4();
        let mut edit = edit_for(2);
        // Edge 1-2 is cut: stored 1->2 at frag 0 and 2->1 at frag 1.
        edit.frags[0].set_weights.push((1, 2, 7));
        edit.frags[1].set_weights.push((2, 1, 7));
        edit.touched = vec![true, true];
        let mut refs: Vec<&mut Fragment<(), u32>> = frags.iter_mut().collect();
        let applied = apply_partition_edit(&mut refs, &edit, &mut EditBuffers::default());
        assert_eq!(applied.weights_increased, 2);
        assert_eq!(applied.weights_decreased, 0);
        assert!(applied.remaps.iter().all(|r| r.is_identity()));
        let f0 = &frags[0];
        let l1 = f0.local(1).unwrap();
        let m2 = f0.local(2).unwrap();
        let pos = f0.neighbors(l1).iter().position(|&t| t == m2).unwrap();
        assert_eq!(f0.edge_data(l1)[pos], 7);
    }

    #[test]
    fn reassemble_roundtrip() {
        let g = crate::generate::small_world(40, 2, 0.1, 9);
        let frags = build_fragments(&g, &hash_partition(&g, 4));
        let view: Vec<&Fragment<(), u32>> = frags.iter().collect();
        let r = reassemble(&view);
        assert_eq!(r.num_vertices(), g.num_vertices());
        assert_eq!(r.num_edges(), g.num_edges());
        for v in g.vertices() {
            // Parallel edges tie under the (src, dst) sort key, so compare
            // the adjacency as a sorted multiset of (target, weight).
            let mut a: Vec<_> = g.edges(v).map(|(t, d)| (t, *d)).collect();
            let mut b: Vec<_> = r.edges(v).map(|(t, d)| (t, *d)).collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
        }
    }
}
