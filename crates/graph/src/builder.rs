//! Incremental construction of CSR graphs from edge lists.

use crate::graph::Graph;
use crate::VertexId;

/// Builds a [`Graph`] from an edge list.
///
/// Edges are buffered, sorted by `(src, dst)` and packed into CSR arrays in
/// one pass, so adjacency lists come out sorted by target id — fragment
/// construction and tests rely on that determinism.
pub struct GraphBuilder<V = (), E = ()> {
    directed: bool,
    node_data: Vec<V>,
    edges: Vec<(VertexId, VertexId, E)>,
}

impl<E> GraphBuilder<(), E> {
    /// A directed graph with `n` vertices and unit node data.
    pub fn new_directed(n: usize) -> Self {
        Self::with_node_data(true, vec![(); n])
    }

    /// An undirected graph with `n` vertices and unit node data. Each added
    /// edge is stored in both directions.
    pub fn new_undirected(n: usize) -> Self {
        Self::with_node_data(false, vec![(); n])
    }
}

impl<V, E> GraphBuilder<V, E> {
    /// Build with explicit per-vertex node data.
    pub fn with_node_data(directed: bool, node_data: Vec<V>) -> Self {
        GraphBuilder { directed, node_data, edges: Vec::new() }
    }

    /// Number of vertices declared so far.
    pub fn num_vertices(&self) -> usize {
        self.node_data.len()
    }

    /// Number of logical edges added so far.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Add one edge. For undirected graphs the reverse direction is added
    /// automatically at build time.
    ///
    /// # Panics
    /// Panics if either endpoint is out of range.
    pub fn add_edge(&mut self, src: VertexId, dst: VertexId, data: E) {
        assert!(
            (src as usize) < self.node_data.len() && (dst as usize) < self.node_data.len(),
            "edge ({src}, {dst}) out of range for {} vertices",
            self.node_data.len()
        );
        self.edges.push((src, dst, data));
    }

    /// Reserve capacity for `extra` more edges.
    pub fn reserve_edges(&mut self, extra: usize) {
        self.edges.reserve(extra);
    }
}

impl<V, E: Clone> GraphBuilder<V, E> {
    /// Finish building.
    pub fn build(self) -> Graph<V, E> {
        let n = self.node_data.len();
        let mut all = self.edges;
        if !self.directed {
            let doubled: Vec<_> = all.iter().map(|(s, d, e)| (*d, *s, e.clone())).collect();
            all.extend(doubled);
        }
        all.sort_unstable_by_key(|&(s, d, _)| ((s as u64) << 32) | d as u64);
        let m = all.len();
        let mut offsets = vec![0usize; n + 1];
        let mut targets = Vec::with_capacity(m);
        let mut edge_data = Vec::with_capacity(m);
        for (s, d, e) in all {
            offsets[s as usize + 1] += 1;
            targets.push(d);
            edge_data.push(e);
        }
        for i in 1..=n {
            offsets[i] += offsets[i - 1];
        }
        Graph::from_parts(self.directed, self.node_data, offsets, targets, edge_data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adjacency_sorted() {
        let mut b = GraphBuilder::new_directed(4);
        b.add_edge(0, 3, 3u32);
        b.add_edge(0, 1, 1);
        b.add_edge(0, 2, 2);
        let g = b.build();
        assert_eq!(g.neighbors(0), &[1, 2, 3]);
        assert_eq!(g.edge_data(0), &[1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range() {
        let mut b = GraphBuilder::new_directed(2);
        b.add_edge(0, 2, ());
    }

    #[test]
    fn parallel_edges_kept() {
        let mut b = GraphBuilder::new_directed(2);
        b.add_edge(0, 1, 1u32);
        b.add_edge(0, 1, 2);
        let g = b.build();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.edge_data(0), &[1, 2]);
    }

    #[test]
    fn empty_graph() {
        let b: GraphBuilder<(), ()> = GraphBuilder::new_directed(0);
        let g = b.build();
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn undirected_degree_counts_both_sides() {
        let mut b = GraphBuilder::new_undirected(3);
        b.add_edge(0, 1, ());
        b.add_edge(1, 2, ());
        let g = b.build();
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.num_edges(), 4);
    }
}
