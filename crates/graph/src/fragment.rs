//! GRAPE fragments: the per-worker view of a partitioned graph.
//!
//! Following §2 of the paper, a strategy `P` partitions `G` into fragments
//! `F = (F1, ..., Fm)`. For an **edge-cut** partition, a cut edge `u -> v`
//! with `u ∈ Fi`, `v ∈ Fj` is stored on the *source* side: `Fi` holds a
//! **mirror** copy of `v` (so `v ∈ Fi.O`), while `Fj` records that its owned
//! vertex `v` has an incoming cross edge (`v ∈ Fj.I`). For undirected graphs
//! every logical edge is stored in both directions, so the symmetric cut
//! edge lives at `Fj` with a mirror of `u` — exactly the replication the
//! paper's CC example relies on.
//!
//! The border-node sets of the paper map onto this type as follows:
//!
//! * `Fi.I`  — [`Fragment::inner_in`]: owned vertices with an incoming cut
//!   edge (these receive messages).
//! * `Fi.O'` — [`Fragment::inner_out`]: owned vertices with an outgoing cut
//!   edge.
//! * `Fi.O`  — the mirror vertices (locals `owned_count()..local_count()`).
//! * `Fi.I'` — in-mirrors; with source-side edge storage these are not
//!   materialised as vertices, but [`Fragment::mirror_holders`] records, for
//!   every owned border vertex, which fragments hold a copy of it.
//!
//! Message routing (see `aap-core`) uses [`Fragment::route`]: an update on a
//! mirror travels to its owner; an update on an owned border vertex travels
//! to every fragment mirroring it.
//!
//! # Dense routing tables
//!
//! [`Fragment::routing`] exposes a precomputed [`RoutingTable`] so the
//! per-round message path never touches a hash map. The table is built once
//! at `build_fragments` time and upholds these invariants, which the
//! engines (`aap-core`, `aap-sim`) rely on:
//!
//! 1. **Destination list.** [`RoutingTable::dests`] is the sorted,
//!    duplicate-free list of every fragment this fragment can ever send
//!    to. Fan-out entries reference destinations by *slot* (index into
//!    that list), so per-destination send buffers can be dense arrays.
//! 2. **Receiver-local addressing.** Each fan-out entry carries the
//!    destination-local id of the vertex — `frags[dst].local(global)` was
//!    resolved at build time. Message batches therefore ship
//!    `(LocalId, Val)` pairs already in the *receiver's* id space and the
//!    receiver's drain indexes straight into arrays of its `local_count()`.
//! 3. **Route agreement.** For every local `l`,
//!    [`RoutingTable::fanout`]`(l)` lists exactly the fragments of
//!    [`Fragment::route`]`(l)`: the owner for a mirror, the holders
//!    (mirror/copy sites) for an owned border vertex, nothing for an
//!    interior vertex. The two views are redundant by construction; the
//!    table is the hot-path form, `route` the explanatory one.
//! 4. **Stability.** The table is immutable after construction — the
//!    partition is fixed for the lifetime of the fragment set ("G is
//!    partitioned once for all queries Q", §3).

use crate::{FragId, FxHashMap, Graph, LocalId, VertexId};

/// Where an updated status variable must be shipped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route<'a> {
    /// The vertex is a mirror; ship to the owning fragment.
    Owner(FragId),
    /// The vertex is owned; ship to every fragment holding a copy.
    Mirrors(&'a [FragId]),
}

/// Precomputed dense routing for one fragment: for every local vertex, the
/// destination fragments *and the destination-local ids* of its copies.
/// See the module docs for the invariants.
///
/// Layout: a CSR over local ids. `fanout(l)` yields
/// `(destination slot, destination-local id)` pairs, where the slot indexes
/// [`RoutingTable::dests`]. Slots let the sender keep one dense send buffer
/// per reachable destination instead of a hash map keyed by fragment id.
#[derive(Debug, Clone, Default)]
pub struct RoutingTable {
    dests: Vec<FragId>,
    offsets: Vec<u32>,
    dest_slot: Vec<u16>,
    remote: Vec<LocalId>,
}

impl RoutingTable {
    pub(crate) fn from_parts(
        dests: Vec<FragId>,
        offsets: Vec<u32>,
        dest_slot: Vec<u16>,
        remote: Vec<LocalId>,
    ) -> Self {
        debug_assert_eq!(dest_slot.len(), remote.len());
        debug_assert_eq!(*offsets.last().unwrap_or(&0) as usize, remote.len());
        debug_assert!(dests.windows(2).all(|w| w[0] < w[1]), "dests sorted unique");
        RoutingTable { dests, offsets, dest_slot, remote }
    }

    /// Sorted, duplicate-free list of every fragment this fragment sends to.
    #[inline]
    pub fn dests(&self) -> &[FragId] {
        &self.dests
    }

    /// Number of distinct destinations (the length of [`RoutingTable::dests`]).
    #[inline]
    pub fn num_dests(&self) -> usize {
        self.dests.len()
    }

    /// Fan-out of local vertex `l`: parallel slices of destination slots
    /// and destination-local ids. Empty for interior vertices.
    #[inline]
    pub fn fanout(&self, l: LocalId) -> (&[u16], &[LocalId]) {
        let lo = self.offsets[l as usize] as usize;
        let hi = self.offsets[l as usize + 1] as usize;
        (&self.dest_slot[lo..hi], &self.remote[lo..hi])
    }

    /// Number of destinations an update to `l` ships to.
    #[inline]
    pub fn fanout_len(&self, l: LocalId) -> usize {
        (self.offsets[l as usize + 1] - self.offsets[l as usize]) as usize
    }

    /// Total fan-out entries across all local vertices.
    #[inline]
    pub fn total_routes(&self) -> usize {
        self.remote.len()
    }
}

/// One fragment `Fi` of a partitioned graph, resident at virtual worker `Pi`.
///
/// Local vertex ids are dense: owned vertices first (`0..owned_count()`,
/// sorted by global id), then mirrors (`owned_count()..local_count()`, also
/// sorted by global id). Mirrors created by edge-cut partitioning carry no
/// out-edges; vertex-cut copies may.
#[derive(Debug, Clone)]
pub struct Fragment<V = (), E = ()> {
    id: FragId,
    num_frags: u16,
    vertex_cut: bool,
    graph: Graph<V, E>,
    globals: Vec<VertexId>,
    g2l: FxHashMap<VertexId, LocalId>,
    owned: usize,
    inner_in: Vec<LocalId>,
    inner_out: Vec<LocalId>,
    mirror_owner: Vec<FragId>,
    /// CSR over owned locals: fragments holding a copy of each owned vertex.
    holder_offsets: Vec<u32>,
    holders: Vec<FragId>,
    /// Dense per-vertex routing, filled in by the fragment builders after
    /// all fragments of the partition exist (it needs peer id maps).
    routing: RoutingTable,
}

#[allow(clippy::too_many_arguments)]
impl<V, E> Fragment<V, E> {
    pub(crate) fn from_parts(
        id: FragId,
        num_frags: u16,
        vertex_cut: bool,
        graph: Graph<V, E>,
        globals: Vec<VertexId>,
        owned: usize,
        inner_in: Vec<LocalId>,
        inner_out: Vec<LocalId>,
        mirror_owner: Vec<FragId>,
        holder_offsets: Vec<u32>,
        holders: Vec<FragId>,
    ) -> Self {
        debug_assert_eq!(graph.num_vertices(), globals.len());
        debug_assert_eq!(globals.len() - owned, mirror_owner.len());
        debug_assert_eq!(holder_offsets.len(), owned + 1);
        let mut g2l = FxHashMap::default();
        g2l.reserve(globals.len());
        for (l, &g) in globals.iter().enumerate() {
            g2l.insert(g, l as LocalId);
        }
        Fragment {
            id,
            num_frags,
            vertex_cut,
            graph,
            globals,
            g2l,
            owned,
            inner_in,
            inner_out,
            mirror_owner,
            holder_offsets,
            holders,
            routing: RoutingTable::default(),
        }
    }

    /// Rebuild a fragment from persisted parts — the durable snapshot
    /// path (`aap-snapshot`). Semantically the data is what the
    /// internal partition-time constructor takes, but everything is validated
    /// unconditionally (snapshot bytes are untrusted) and the local
    /// `g2l` map is re-derived rather than persisted. The dense
    /// [`RoutingTable`] is **not** attached here: it is derivable, so
    /// loaders re-derive it for the whole partition with
    /// [`crate::partition::rebuild_routing_tables`] once every fragment
    /// exists.
    ///
    /// # Panics
    /// Panics on inconsistent parts — [`Fragment::try_from_saved_parts`]
    /// is the error-returning form loaders use; every check lives there.
    #[allow(clippy::too_many_arguments)]
    pub fn from_saved_parts(
        id: FragId,
        num_frags: u16,
        vertex_cut: bool,
        graph: Graph<V, E>,
        globals: Vec<VertexId>,
        owned: usize,
        inner_in: Vec<LocalId>,
        inner_out: Vec<LocalId>,
        mirror_owner: Vec<FragId>,
        holder_offsets: Vec<u32>,
        holders: Vec<FragId>,
    ) -> Self {
        Fragment::try_from_saved_parts(
            id,
            num_frags,
            vertex_cut,
            graph,
            globals,
            owned,
            inner_in,
            inner_out,
            mirror_owner,
            holder_offsets,
            holders,
        )
        .unwrap_or_else(|e| panic!("inconsistent fragment parts: {e}"))
    }

    /// Fallible form of [`Fragment::from_saved_parts`] — the single home
    /// of the per-fragment validity checks, so deserializers turn bad
    /// input into a tagged error instead of a panic and cannot drift
    /// from the constructor's invariants.
    ///
    /// # Errors
    /// Describes the first inconsistency found: wrong array lengths,
    /// unsorted border sets, out-of-range local ids or fragment ids.
    #[allow(clippy::too_many_arguments)]
    pub fn try_from_saved_parts(
        id: FragId,
        num_frags: u16,
        vertex_cut: bool,
        graph: Graph<V, E>,
        globals: Vec<VertexId>,
        owned: usize,
        inner_in: Vec<LocalId>,
        inner_out: Vec<LocalId>,
        mirror_owner: Vec<FragId>,
        holder_offsets: Vec<u32>,
        holders: Vec<FragId>,
    ) -> Result<Self, String> {
        let n = globals.len();
        let check = |cond: bool, what: &str| -> Result<(), String> {
            if cond {
                Ok(())
            } else {
                Err(format!("fragment {id}: {what}"))
            }
        };
        check((id as usize) < num_frags as usize, "fragment id out of range")?;
        check(graph.num_vertices() == n, "local graph must cover all locals")?;
        check(owned <= n, "owned count exceeds local count")?;
        // The local-id layout invariant: owned globals strictly sorted,
        // then mirror globals strictly sorted, with no id in both. A
        // duplicate would collapse the g2l map (last wins) and silently
        // misroute messages; an unsorted list breaks the mirror-diff
        // walks in `mutate`.
        check(globals[..owned].windows(2).all(|w| w[0] < w[1]), "owned globals sorted unique")?;
        check(globals[owned..].windows(2).all(|w| w[0] < w[1]), "mirror globals sorted unique")?;
        {
            let (mut i, mut j) = (0, owned);
            while i < owned && j < n {
                match globals[i].cmp(&globals[j]) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        return Err(format!(
                            "fragment {id}: vertex {} is both owned and a mirror",
                            globals[i]
                        ))
                    }
                }
            }
        }
        check(mirror_owner.len() == n - owned, "one owner per mirror")?;
        check(
            mirror_owner.iter().all(|&f| (f as usize) < num_frags as usize),
            "mirror owner out of range",
        )?;
        check(holder_offsets.len() == owned + 1, "holder CSR over owned locals")?;
        check(holder_offsets.first().copied().unwrap_or(0) == 0, "holder offsets start at 0")?;
        check(holder_offsets.windows(2).all(|w| w[0] <= w[1]), "holder offsets monotone")?;
        check(
            *holder_offsets.last().unwrap_or(&0) as usize == holders.len(),
            "holder offsets end at holder count",
        )?;
        check(holders.iter().all(|&f| (f as usize) < num_frags as usize), "holder out of range")?;
        for set in [&inner_in, &inner_out] {
            check(set.windows(2).all(|w| w[0] < w[1]), "border sets sorted unique")?;
            check(set.iter().all(|&l| (l as usize) < owned), "border sets are owned locals")?;
        }
        Ok(Fragment::from_parts(
            id,
            num_frags,
            vertex_cut,
            graph,
            globals,
            owned,
            inner_in,
            inner_out,
            mirror_owner,
            holder_offsets,
            holders,
        ))
    }

    /// Owning fragment of every mirror, indexed by `local - owned_count()`
    /// (raw form of [`Fragment::owner`], for serialization).
    #[inline]
    pub fn mirror_owners(&self) -> &[FragId] {
        &self.mirror_owner
    }

    /// The holder CSR over owned locals as raw `(offsets, holders)`
    /// arrays (raw form of [`Fragment::mirror_holders`], for
    /// serialization).
    #[inline]
    pub fn holder_csr(&self) -> (&[u32], &[FragId]) {
        (&self.holder_offsets, &self.holders)
    }

    pub(crate) fn set_routing(&mut self, routing: RoutingTable) {
        debug_assert_eq!(routing.offsets.len(), self.globals.len() + 1);
        self.routing = routing;
    }

    /// Re-point one mirror's owner hint after its vertex migrated to a
    /// new fragment (elastic rebalancing; see
    /// [`crate::mutate::migrate_edge_cut`]). `l` must be a mirror.
    pub(crate) fn set_mirror_owner(&mut self, l: LocalId, owner: FragId) {
        debug_assert!((l as usize) >= self.owned, "owner hints exist only for mirrors");
        debug_assert!((owner as usize) < self.num_frags as usize);
        self.mirror_owner[l as usize - self.owned] = owner;
    }

    /// Replace the holder CSR and `Fi.I` after a peer gained or lost a
    /// mirror of one of this fragment's owned vertices (delta application;
    /// see [`crate::mutate`]). The local id space is untouched.
    pub(crate) fn replace_borders(
        &mut self,
        inner_in: Vec<LocalId>,
        holder_offsets: Vec<u32>,
        holders: Vec<FragId>,
    ) {
        debug_assert_eq!(holder_offsets.len(), self.owned + 1);
        debug_assert!(inner_in.windows(2).all(|w| w[0] < w[1]));
        self.inner_in = inner_in;
        self.holder_offsets = holder_offsets;
        self.holders = holders;
    }

    /// The precomputed dense routing table (see the module docs for its
    /// invariants). This is the message hot path; [`Fragment::route`] is
    /// the equivalent explanatory view.
    #[inline]
    pub fn routing(&self) -> &RoutingTable {
        &self.routing
    }

    /// This fragment's id (`i` of `Fi`).
    #[inline]
    pub fn id(&self) -> FragId {
        self.id
    }

    /// Total number of fragments in the partition.
    #[inline]
    pub fn num_frags(&self) -> u16 {
        self.num_frags
    }

    /// True if this fragment came from a vertex-cut partition (copies carry
    /// edges; owned border values must be broadcast to copies).
    #[inline]
    pub fn is_vertex_cut(&self) -> bool {
        self.vertex_cut
    }

    /// Number of vertices owned by this fragment.
    #[inline]
    pub fn owned_count(&self) -> usize {
        self.owned
    }

    /// Number of local vertices (owned + mirrors).
    #[inline]
    pub fn local_count(&self) -> usize {
        self.globals.len()
    }

    /// Number of mirror vertices.
    #[inline]
    pub fn mirror_count(&self) -> usize {
        self.globals.len() - self.owned
    }

    /// Number of locally stored directed edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.graph.num_edges()
    }

    /// Global id of local vertex `l`.
    #[inline]
    pub fn global(&self, l: LocalId) -> VertexId {
        self.globals[l as usize]
    }

    /// All global ids, indexed by local id.
    #[inline]
    pub fn globals(&self) -> &[VertexId] {
        &self.globals
    }

    /// Local id of global vertex `g`, if present in this fragment.
    #[inline]
    pub fn local(&self, g: VertexId) -> Option<LocalId> {
        self.g2l.get(&g).copied()
    }

    /// Whether local vertex `l` is owned (as opposed to a mirror).
    #[inline]
    pub fn is_owned(&self, l: LocalId) -> bool {
        (l as usize) < self.owned
    }

    /// Owning fragment of a local vertex.
    #[inline]
    pub fn owner(&self, l: LocalId) -> FragId {
        if self.is_owned(l) {
            self.id
        } else {
            self.mirror_owner[l as usize - self.owned]
        }
    }

    /// Out-neighbours (local ids) of local vertex `l`.
    #[inline]
    pub fn neighbors(&self, l: LocalId) -> &[LocalId] {
        self.graph.neighbors(l)
    }

    /// Edge data parallel to [`Fragment::neighbors`].
    #[inline]
    pub fn edge_data(&self, l: LocalId) -> &[E] {
        self.graph.edge_data(l)
    }

    /// Iterate `(neighbor, &edge_data)` of local vertex `l`.
    #[inline]
    pub fn edges(&self, l: LocalId) -> impl Iterator<Item = (LocalId, &E)> + '_ {
        self.graph.edges(l)
    }

    /// Adjacency of `l` with mutable edge data (weight-only in-place
    /// apply; structure stays frozen).
    #[inline]
    pub(crate) fn adjacency_mut(&mut self, l: LocalId) -> (&[LocalId], &mut [E]) {
        self.graph.adjacency_mut(l)
    }

    /// Node data of local vertex `l`.
    #[inline]
    pub fn node(&self, l: LocalId) -> &V {
        self.graph.node(l)
    }

    /// The local adjacency structure as a [`Graph`] over local ids.
    #[inline]
    pub fn local_graph(&self) -> &Graph<V, E> {
        &self.graph
    }

    /// `Fi.I`: owned vertices with an incoming cut edge. Incoming messages
    /// target these (and, for vertex-cut partitions, owned copies).
    #[inline]
    pub fn inner_in(&self) -> &[LocalId] {
        &self.inner_in
    }

    /// `Fi.O'`: owned vertices with an outgoing cut edge.
    #[inline]
    pub fn inner_out(&self) -> &[LocalId] {
        &self.inner_out
    }

    /// Iterate the mirror vertices (`Fi.O`) as local ids.
    #[inline]
    pub fn mirrors(&self) -> impl Iterator<Item = LocalId> + '_ {
        (self.owned as LocalId)..(self.globals.len() as LocalId)
    }

    /// Fragments holding a copy of *owned* vertex `l` (empty for
    /// non-border vertices).
    #[inline]
    pub fn mirror_holders(&self, l: LocalId) -> &[FragId] {
        debug_assert!(self.is_owned(l));
        let i = l as usize;
        &self.holders[self.holder_offsets[i] as usize..self.holder_offsets[i + 1] as usize]
    }

    /// Routing of an update to the status variable of local vertex `l`
    /// (§3: point-to-point push-based message passing).
    #[inline]
    pub fn route(&self, l: LocalId) -> Route<'_> {
        if self.is_owned(l) {
            Route::Mirrors(self.mirror_holders(l))
        } else {
            Route::Owner(self.mirror_owner[l as usize - self.owned])
        }
    }

    /// True if the vertex is a border node in the sense of §2 (has an
    /// adjacent cross edge or a copy in another fragment).
    #[inline]
    pub fn is_border(&self, l: LocalId) -> bool {
        if self.is_owned(l) {
            !self.mirror_holders(l).is_empty()
                || self.inner_in.binary_search(&l).is_ok()
                || self.inner_out.binary_search(&l).is_ok()
        } else {
            true
        }
    }

    /// Iterate owned local ids.
    #[inline]
    pub fn owned_vertices(&self) -> impl Iterator<Item = LocalId> {
        0..(self.owned as LocalId)
    }

    /// Iterate all local ids.
    #[inline]
    pub fn local_vertices(&self) -> impl Iterator<Item = LocalId> {
        0..(self.globals.len() as LocalId)
    }
}

/// Summary statistics of a partition, used by the skewness experiments
/// (Fig 6(k)) and reported by the harness.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionStats {
    /// Owned vertices per fragment.
    pub owned: Vec<usize>,
    /// Stored edges per fragment.
    pub edges: Vec<usize>,
    /// Mirrors per fragment.
    pub mirrors: Vec<usize>,
    /// Number of cut (cross-fragment) directed edges.
    pub cut_edges: usize,
    /// `‖Fmax‖ / ‖Fmedian‖` over stored edges — the skew measure `r` of §7.
    pub skew_r: f64,
    /// Average copies per vertex (1.0 means no replication). For
    /// vertex-cut partitions this is the replication factor in the
    /// PowerGraph sense (total copies / distinct vertices).
    pub replication_factor: f64,
    /// `max(owned) / mean(owned)` — ownership (load) imbalance,
    /// 1.0 when perfectly balanced.
    pub load_balance: f64,
    /// `max(edges) / mean(edges)` — stored-edge imbalance, 1.0 when
    /// perfectly balanced.
    pub edge_balance: f64,
}

impl PartitionStats {
    /// Derive the full statistics record from per-fragment counts.
    ///
    /// This is the single source of truth for every derived metric
    /// (`skew_r`, `replication_factor`, `load_balance`, `edge_balance`):
    /// [`partition_stats`] delegates here after a full scan, and
    /// incremental consumers (the balance monitor) call it directly with
    /// counts they maintain across applies.
    pub fn from_counts(
        owned: Vec<usize>,
        edges: Vec<usize>,
        mirrors: Vec<usize>,
        cut_edges: usize,
    ) -> PartitionStats {
        let mut sorted = edges.clone();
        sorted.sort_unstable();
        let max = *sorted.last().unwrap_or(&0) as f64;
        let median = sorted.get(sorted.len() / 2).copied().unwrap_or(0) as f64;
        let skew_r = if median > 0.0 { max / median } else { 1.0 };
        let total_owned: usize = owned.iter().sum();
        let total_local: usize = total_owned + mirrors.iter().sum::<usize>();
        let replication_factor =
            if total_owned > 0 { total_local as f64 / total_owned as f64 } else { 1.0 };
        let ratio = |counts: &[usize]| -> f64 {
            let total: usize = counts.iter().sum();
            if total == 0 || counts.is_empty() {
                return 1.0;
            }
            let mean = total as f64 / counts.len() as f64;
            let max = counts.iter().copied().max().unwrap_or(0) as f64;
            max / mean
        };
        let load_balance = ratio(&owned);
        let edge_balance = ratio(&edges);
        PartitionStats {
            owned,
            edges,
            mirrors,
            cut_edges,
            skew_r,
            replication_factor,
            load_balance,
            edge_balance,
        }
    }

    /// Ownership imbalance `max/mean` — the metric the rebalance policy
    /// thresholds on.
    #[inline]
    pub fn imbalance(&self) -> f64 {
        self.load_balance
    }
}

/// Count the cut (cross-fragment) directed edges stored in one fragment.
///
/// For edge-cut fragments these are edges whose target is a mirror; for
/// vertex-cut fragments every stored edge is local, so this counts edges
/// into copies (a replication proxy).
pub fn fragment_cut_edges<V, E>(f: &Fragment<V, E>) -> usize {
    f.local_vertices().flat_map(|l| f.neighbors(l)).filter(|&&t| !f.is_owned(t)).count()
}

/// Compute [`PartitionStats`] for a set of fragments. Accepts both
/// `&[Fragment]` and `&[Arc<Fragment>]` (anything borrowing a
/// fragment), so engine/session fragment slices work directly.
pub fn partition_stats<V, E, F: std::borrow::Borrow<Fragment<V, E>>>(
    frags: &[F],
) -> PartitionStats {
    let frags: Vec<&Fragment<V, E>> = frags.iter().map(|f| f.borrow()).collect();
    let owned: Vec<usize> = frags.iter().map(|f| f.owned_count()).collect();
    let edges: Vec<usize> = frags.iter().map(|f| f.edge_count()).collect();
    let mirrors: Vec<usize> = frags.iter().map(|f| f.mirror_count()).collect();
    let cut_edges = frags.iter().map(|f| fragment_cut_edges(f)).sum();
    PartitionStats::from_counts(owned, edges, mirrors, cut_edges)
}

#[cfg(test)]
mod tests {
    use crate::partition::{build_fragments, hash_partition};
    use crate::{GraphBuilder, Route};

    /// Path 0-1-2-3 split as {0,1} / {2,3}.
    fn two_frag_path() -> Vec<crate::Fragment<(), u32>> {
        let mut b = GraphBuilder::new_undirected(4);
        b.add_edge(0, 1, 1u32);
        b.add_edge(1, 2, 1);
        b.add_edge(2, 3, 1);
        let g = b.build();
        let assignment = vec![0u16, 0, 1, 1];
        build_fragments(&g, &assignment)
    }

    #[test]
    fn border_sets_of_path() {
        let frags = two_frag_path();
        let f0 = &frags[0];
        let f1 = &frags[1];
        assert_eq!(f0.owned_count(), 2);
        assert_eq!(f0.mirror_count(), 1); // mirror of 2
        assert_eq!(f1.owned_count(), 2);
        assert_eq!(f1.mirror_count(), 1); // mirror of 1

        // Fi.I / Fi.O' of fragment 0 are both {1} (undirected cut edge 1-2).
        let inner_in: Vec<_> = f0.inner_in().iter().map(|&l| f0.global(l)).collect();
        let inner_out: Vec<_> = f0.inner_out().iter().map(|&l| f0.global(l)).collect();
        assert_eq!(inner_in, vec![1]);
        assert_eq!(inner_out, vec![1]);

        // The mirror of global 2 at fragment 0 routes to owner 1.
        let m = f0.local(2).unwrap();
        assert!(!f0.is_owned(m));
        assert_eq!(f0.route(m), Route::Owner(1));

        // Owned border vertex 1 at fragment 0 is mirrored at fragment 1.
        let b = f0.local(1).unwrap();
        assert_eq!(f0.route(b), Route::Mirrors(&[1]));
        assert!(f0.is_border(b));
        assert!(!f0.is_border(f0.local(0).unwrap()));
    }

    #[test]
    fn mirrors_have_no_out_edges_in_edge_cut() {
        let frags = two_frag_path();
        for f in &frags {
            for m in f.mirrors() {
                assert!(f.neighbors(m).is_empty());
            }
        }
    }

    #[test]
    fn globals_partition_the_vertex_set() {
        let mut b = GraphBuilder::new_undirected(50);
        for v in 0..50u32 {
            b.add_edge(v, (v + 7) % 50, 1u32);
        }
        let g = b.build();
        let assignment = hash_partition(&g, 4);
        let frags = build_fragments(&g, &assignment);
        let mut seen = [false; 50];
        for f in &frags {
            for l in f.owned_vertices() {
                let gid = f.global(l) as usize;
                assert!(!seen[gid], "vertex owned twice");
                seen[gid] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn try_from_saved_parts_rejects_degenerate_globals() {
        use crate::Graph;
        let mk = |globals: Vec<u32>| {
            let n = globals.len();
            crate::Fragment::<(), u32>::try_from_saved_parts(
                0,
                2,
                false,
                Graph::from_csr(true, vec![(); n], vec![0; n + 1], vec![], vec![]),
                globals,
                1,
                vec![],
                vec![],
                vec![1],
                vec![0, 0],
                vec![],
            )
        };
        // A duplicated global id would collapse the g2l map.
        let err = mk(vec![4, 4]).unwrap_err();
        assert!(err.contains("both owned and a mirror"), "{err}");
        // Sorted, disjoint owned/mirror globals pass.
        assert!(mk(vec![4, 7]).is_ok());
        assert!(mk(vec![7, 4]).is_ok(), "mirror ids may sort below owned ids");
    }

    #[test]
    fn partition_stats_sane() {
        let frags = two_frag_path();
        let stats = super::partition_stats(&frags);
        assert_eq!(stats.owned, vec![2, 2]);
        assert_eq!(stats.cut_edges, 2); // 1->2 at f0, 2->1 at f1
        assert!(stats.replication_factor > 1.0);
        assert!(stats.skew_r >= 1.0);
    }
}
