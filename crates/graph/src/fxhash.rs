//! A minimal re-implementation of the well-known `FxHash` algorithm used by
//! rustc: a fast, non-cryptographic multiplicative hash.
//!
//! The external `rustc-hash` crate is not on the allowed dependency list for
//! this project, and the standard SipHash hasher is measurably slow for the
//! integer keys (vertex ids) that dominate our hot paths, so we carry this
//! ~40-line implementation ourselves.

use std::hash::{BuildHasherDefault, Hasher};

/// 64-bit Fx hasher state.
#[derive(Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, i: u64) {
        self.hash = (self.hash.rotate_left(5) ^ i).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// Hash a single `u64` with a splitmix64 finalizer. Unlike the raw Fx mix,
/// every output bit depends on every input bit, so `hash_u64(v) % m` is safe
/// for partitioning decisions.
#[inline]
pub fn hash_u64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::BuildHasher;

    #[test]
    fn deterministic() {
        let b = FxBuildHasher::default();
        assert_eq!(b.hash_one(42u64), b.hash_one(42u64));
        assert_ne!(b.hash_one(42u64), b.hash_one(43u64));
    }

    #[test]
    fn spreads_small_integers() {
        // hash_u64 must spread consecutive ids across both high and low bits.
        let mut hi = std::collections::HashSet::new();
        let mut lo = std::collections::HashSet::new();
        for i in 0..1024u64 {
            hi.insert(hash_u64(i) >> 54);
            lo.insert(hash_u64(i) & 1023);
        }
        assert!(hi.len() > 512, "only {} high buckets", hi.len());
        assert!(lo.len() > 512, "only {} low buckets", lo.len());
    }

    #[test]
    fn hash_u64_mixes() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            seen.insert(hash_u64(i) % 97);
        }
        assert_eq!(seen.len(), 97);
    }
}
