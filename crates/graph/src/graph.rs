//! Compressed sparse row (CSR) property graphs.
//!
//! `Graph<V, E>` stores a directed adjacency structure; undirected graphs
//! are represented by storing every edge in both directions and setting the
//! [`Graph::is_directed`] flag to `false`, which matches how the paper's
//! fragments treat undirected cut edges (each endpoint sees the edge).

use crate::VertexId;

/// An immutable CSR graph with node data `V` and edge data `E`.
///
/// Vertices are dense identifiers `0..n`. Out-edges of vertex `v` occupy the
/// slice `targets[offsets[v]..offsets[v + 1]]` (and the parallel slice of
/// `edge_data`).
#[derive(Clone, Debug)]
pub struct Graph<V = (), E = ()> {
    directed: bool,
    node_data: Vec<V>,
    offsets: Vec<usize>,
    targets: Vec<VertexId>,
    edge_data: Vec<E>,
}

impl<V, E> Graph<V, E> {
    pub(crate) fn from_parts(
        directed: bool,
        node_data: Vec<V>,
        offsets: Vec<usize>,
        targets: Vec<VertexId>,
        edge_data: Vec<E>,
    ) -> Self {
        debug_assert_eq!(offsets.len(), node_data.len() + 1);
        debug_assert_eq!(*offsets.last().unwrap_or(&0), targets.len());
        debug_assert_eq!(targets.len(), edge_data.len());
        Graph { directed, node_data, offsets, targets, edge_data }
    }

    /// Build a graph directly from *stored* directed edges: no doubling is
    /// performed, so callers constructing an undirected graph must pass
    /// both directions themselves. Edges are sorted by `(src, dst)` and
    /// packed into CSR, matching what [`crate::GraphBuilder`] produces.
    ///
    /// This is the rebuild path of the delta subsystem (`aap-delta`
    /// re-packs a mutated edge set without re-expanding logical edges).
    pub fn from_stored_edges(
        directed: bool,
        node_data: Vec<V>,
        mut edges: Vec<(VertexId, VertexId, E)>,
    ) -> Self {
        let n = node_data.len();
        edges.sort_unstable_by_key(|&(s, d, _)| ((s as u64) << 32) | d as u64);
        let mut offsets = vec![0usize; n + 1];
        let mut targets = Vec::with_capacity(edges.len());
        let mut edge_data = Vec::with_capacity(edges.len());
        for (s, d, e) in edges {
            assert!((s as usize) < n && (d as usize) < n, "edge ({s}, {d}) out of range");
            offsets[s as usize + 1] += 1;
            targets.push(d);
            edge_data.push(e);
        }
        for i in 1..=n {
            offsets[i] += offsets[i - 1];
        }
        Graph::from_parts(directed, node_data, offsets, targets, edge_data)
    }

    /// Build a graph from already-validated CSR arrays — the durable
    /// snapshot path (`aap-snapshot`), which persists the arrays verbatim.
    /// Unlike the `debug_assert`-guarded internal constructor, this
    /// validates unconditionally: data arriving from disk is untrusted.
    ///
    /// # Panics
    /// Panics if the arrays are not a well-formed CSR —
    /// [`Graph::try_from_csr`] is the error-returning form loaders use;
    /// every check lives there.
    pub fn from_csr(
        directed: bool,
        node_data: Vec<V>,
        offsets: Vec<usize>,
        targets: Vec<VertexId>,
        edge_data: Vec<E>,
    ) -> Self {
        Graph::try_from_csr(directed, node_data, offsets, targets, edge_data)
            .unwrap_or_else(|e| panic!("malformed CSR: {e}"))
    }

    /// Fallible form of [`Graph::from_csr`] — the single home of the
    /// CSR validity checks, so deserializers turn bad input into a
    /// tagged error instead of a panic.
    ///
    /// # Errors
    /// Describes the first malformation found: mismatched lengths,
    /// non-monotone offsets, or out-of-range targets.
    pub fn try_from_csr(
        directed: bool,
        node_data: Vec<V>,
        offsets: Vec<usize>,
        targets: Vec<VertexId>,
        edge_data: Vec<E>,
    ) -> Result<Self, String> {
        let n = node_data.len();
        if offsets.len() != n + 1 {
            return Err("offsets must have num_vertices + 1 entries".into());
        }
        if offsets.first().copied().unwrap_or(0) != 0 {
            return Err("offsets must start at 0".into());
        }
        if *offsets.last().unwrap() != targets.len() {
            return Err("offsets must end at num_edges".into());
        }
        if targets.len() != edge_data.len() {
            return Err("one edge datum per target".into());
        }
        if offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err("offsets must be monotone".into());
        }
        if targets.iter().any(|&t| (t as usize) >= n) {
            return Err("edge target out of range".into());
        }
        Ok(Graph { directed, node_data, offsets, targets, edge_data })
    }

    /// The CSR offset array (`num_vertices + 1` entries; out-edges of `v`
    /// occupy `targets()[offsets()[v]..offsets()[v + 1]]`).
    #[inline]
    pub fn offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// The flat CSR target array, all out-edges in vertex order.
    #[inline]
    pub fn targets(&self) -> &[VertexId] {
        &self.targets
    }

    /// The flat edge-data array, parallel to [`Graph::targets`].
    #[inline]
    pub fn edge_data_all(&self) -> &[E] {
        &self.edge_data
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.node_data.len()
    }

    /// Number of *stored* directed edges. For an undirected graph this is
    /// twice the number of logical edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.targets.len()
    }

    /// Whether the graph is directed.
    #[inline]
    pub fn is_directed(&self) -> bool {
        self.directed
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.offsets[v as usize + 1] - self.offsets[v as usize]
    }

    /// Out-neighbours of `v`.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        &self.targets[self.offsets[v as usize]..self.offsets[v as usize + 1]]
    }

    /// Edge data parallel to [`Graph::neighbors`].
    #[inline]
    pub fn edge_data(&self, v: VertexId) -> &[E] {
        &self.edge_data[self.offsets[v as usize]..self.offsets[v as usize + 1]]
    }

    /// Iterate `(target, &edge_data)` pairs of the out-edges of `v`.
    #[inline]
    pub fn edges(&self, v: VertexId) -> impl Iterator<Item = (VertexId, &E)> + '_ {
        self.neighbors(v).iter().copied().zip(self.edge_data(v).iter())
    }

    /// The adjacency of `v` with mutable edge data — the in-place
    /// weight-patch path (`mutate`) overwrites stored weights without
    /// touching the CSR structure.
    #[inline]
    pub(crate) fn adjacency_mut(&mut self, v: VertexId) -> (&[VertexId], &mut [E]) {
        let r = self.offsets[v as usize]..self.offsets[v as usize + 1];
        (&self.targets[r.clone()], &mut self.edge_data[r])
    }

    /// Node data of `v`.
    #[inline]
    pub fn node(&self, v: VertexId) -> &V {
        &self.node_data[v as usize]
    }

    /// Mutable node data of `v`.
    #[inline]
    pub fn node_mut(&mut self, v: VertexId) -> &mut V {
        &mut self.node_data[v as usize]
    }

    /// All node data, indexed by vertex id.
    #[inline]
    pub fn nodes(&self) -> &[V] {
        &self.node_data
    }

    /// Iterate all vertices.
    #[inline]
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> {
        0..self.node_data.len() as VertexId
    }

    /// Iterate every stored directed edge as `(src, dst, &data)`.
    pub fn all_edges(&self) -> impl Iterator<Item = (VertexId, VertexId, &E)> + '_ {
        self.vertices().flat_map(move |v| self.edges(v).map(move |(t, d)| (v, t, d)))
    }

    /// Total bytes of the topology arrays (rough memory accounting).
    pub fn topology_bytes(&self) -> usize {
        self.offsets.len() * std::mem::size_of::<usize>()
            + self.targets.len() * std::mem::size_of::<VertexId>()
            + self.edge_data.len() * std::mem::size_of::<E>()
    }
}

impl<V: Clone, E: Clone> Graph<V, E> {
    /// Reverse graph: every edge `u -> v` becomes `v -> u`. Node data is
    /// preserved; edge data is cloned onto the reversed edge.
    pub fn reverse(&self) -> Self {
        let n = self.num_vertices();
        let mut deg = vec![0usize; n + 1];
        for &t in &self.targets {
            deg[t as usize + 1] += 1;
        }
        for i in 1..=n {
            deg[i] += deg[i - 1];
        }
        let offsets = deg.clone();
        let mut cursor = deg;
        let mut targets = vec![0 as VertexId; self.targets.len()];
        let mut edge_data: Vec<E> = Vec::with_capacity(self.edge_data.len());
        // SAFETY-free two pass fill: place edges by cursor.
        // We need edge_data aligned with targets, so fill via Option slots.
        let mut slots: Vec<Option<E>> = vec![None; self.edge_data.len()];
        for (u, v, d) in self.all_edges() {
            let slot = cursor[v as usize];
            cursor[v as usize] += 1;
            targets[slot] = u;
            slots[slot] = Some(d.clone());
        }
        for s in slots {
            edge_data.push(s.expect("every slot filled"));
        }
        Graph::from_parts(self.directed, self.node_data.clone(), offsets, targets, edge_data)
    }
}

#[cfg(test)]
mod tests {
    use crate::GraphBuilder;

    #[test]
    fn csr_basics() {
        let mut b = GraphBuilder::new_directed(4);
        b.add_edge(0, 1, 10u32);
        b.add_edge(0, 2, 20);
        b.add_edge(2, 3, 30);
        let g = b.build();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.edge_data(0), &[10, 20]);
        assert_eq!(g.degree(1), 0);
        assert_eq!(g.neighbors(2), &[3]);
        assert!(g.is_directed());
    }

    #[test]
    fn undirected_stores_both_directions() {
        let mut b = GraphBuilder::new_undirected(3);
        b.add_edge(0, 1, 5u32);
        let g = b.build();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(1), &[0]);
        assert_eq!(g.edge_data(1), &[5]);
        assert!(!g.is_directed());
    }

    #[test]
    fn reverse_roundtrip() {
        let mut b = GraphBuilder::new_directed(5);
        b.add_edge(0, 4, 1u32);
        b.add_edge(1, 4, 2);
        b.add_edge(4, 2, 3);
        let g = b.build();
        let r = g.reverse();
        assert_eq!(r.neighbors(4), &[0, 1]);
        assert_eq!(r.neighbors(2), &[4]);
        let rr = r.reverse();
        for v in g.vertices() {
            let mut a: Vec<_> = g.edges(v).map(|(t, d)| (t, *d)).collect();
            let mut b: Vec<_> = rr.edges(v).map(|(t, d)| (t, *d)).collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn all_edges_enumerates_everything() {
        let mut b = GraphBuilder::new_directed(3);
        b.add_edge(0, 1, ());
        b.add_edge(1, 2, ());
        b.add_edge(2, 0, ());
        let g = b.build();
        assert_eq!(g.all_edges().count(), 3);
    }
}
