//! Elastic partition rebalancing — `aap-balance`.
//!
//! Repeated delta batches skew fragment sizes, and a skewed partition
//! erodes exactly the adaptive advantage AAP is built around: stragglers
//! stop being a scheduling problem and become a structural one. This
//! crate closes the loop with three parts:
//!
//! * **Monitor** — [`BalanceMonitor`] keeps per-fragment owned/edge/
//!   mirror counts and delta-touch rates *incrementally*: a full scan
//!   once at construction, then count refreshes only for fragments an
//!   apply actually changed. [`BalanceMonitor::report`] folds the counts
//!   through [`PartitionStats::from_counts`] (the single source of truth
//!   for derived metrics) into a [`BalanceReport`].
//! * **Planner** — [`plan_migration`] turns an over-threshold report
//!   into a bounded [`MigrationPlan`]: greedy selection of border
//!   vertices on overloaded fragments, scored by load reduction minus
//!   new cut edges, moved to the best underloaded target. Budgeted so a
//!   rebalance round never stalls serving.
//! * **Executor** — [`execute_migration`] applies the plan in place:
//!   [`aap_graph::mutate::migrate_edge_cut_traced`] for edge-cut
//!   fragments, the shared vertex-cut patch path
//!   ([`aap_graph::mutate::patch_vertex_cut_traced`] with owner
//!   overrides) for vertex-cut. Both return an
//!   [`AppliedEdit`] whose `StateRemap`s carry retained warm state with
//!   the migrated vertices — the next round is warm, never cold.
//!
//! The session facade (`aap-session`) wires these together behind
//! `SessionBuilder::balance(BalancePolicy)` and `Session::rebalance()`.

use aap_graph::fragment::{PartitionStats, fragment_cut_edges};
use aap_graph::mutate::{
    migrate_edge_cut_traced, patch_vertex_cut_traced, AppliedEdit, StateRemap, VertexCutEdit,
    VertexMove,
};
use aap_graph::{FragId, Fragment, LocalId, VertexId};
use aap_trace::{cat, pid, Args, Tracer};
use std::borrow::Borrow;

/// When to rebalance and how much to move per round.
///
/// Built fluently, mirroring `DurabilityPolicy`:
///
/// ```
/// use aap_balance::BalancePolicy;
/// let policy = BalancePolicy::new().max_imbalance(1.2).migration_budget(512).auto(true);
/// assert!(policy.auto);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BalancePolicy {
    /// Trigger threshold on `max/mean` fragment load; 1.0 is perfect
    /// balance. A plan aims to bring the load ratio back under this.
    pub max_imbalance: f64,
    /// Maximum vertices migrated per rebalance round. Bounds the repack
    /// work (and thus the serving-latency blip) of one round; persistent
    /// skew is drained over several rounds instead of one huge fence.
    pub migration_budget: usize,
    /// When true, the session rebalances opportunistically after an
    /// apply that leaves the partition over threshold.
    pub auto: bool,
}

impl BalancePolicy {
    /// Defaults: trigger above 1.15, move at most 1024 vertices per
    /// round, explicit `rebalance()` calls only.
    pub fn new() -> Self {
        BalancePolicy { max_imbalance: 1.15, migration_budget: 1024, auto: false }
    }

    /// Set the `max/mean` load ratio above which a plan is produced.
    pub fn max_imbalance(mut self, r: f64) -> Self {
        assert!(r >= 1.0, "imbalance threshold is a max/mean ratio, so >= 1.0");
        self.max_imbalance = r;
        self
    }

    /// Set the per-round migration budget (vertices).
    pub fn migration_budget(mut self, k: usize) -> Self {
        self.migration_budget = k;
        self
    }

    /// Enable or disable automatic rebalancing after applies.
    pub fn auto(mut self, on: bool) -> Self {
        self.auto = on;
        self
    }
}

impl Default for BalancePolicy {
    fn default() -> Self {
        BalancePolicy::new()
    }
}

/// Incremental drift tracker: per-fragment counts maintained across
/// applies without rescanning untouched fragments.
#[derive(Debug, Clone)]
pub struct BalanceMonitor {
    vertex_cut: bool,
    owned: Vec<usize>,
    edges: Vec<usize>,
    mirrors: Vec<usize>,
    cut_edges: Vec<usize>,
    touches: Vec<u64>,
}

impl BalanceMonitor {
    /// Full scan of the fragment set — done once; afterwards only
    /// [`refresh`](BalanceMonitor::refresh) on changed fragments.
    pub fn new<V, E, F: Borrow<Fragment<V, E>>>(frags: &[F]) -> Self {
        let mut mon = BalanceMonitor {
            vertex_cut: frags.first().map(|f| f.borrow().is_vertex_cut()).unwrap_or(false),
            owned: vec![0; frags.len()],
            edges: vec![0; frags.len()],
            mirrors: vec![0; frags.len()],
            cut_edges: vec![0; frags.len()],
            touches: vec![0; frags.len()],
        };
        let all = vec![true; frags.len()];
        mon.refresh(frags, &all);
        mon
    }

    /// Re-count only the fragments an apply changed (`changed` is the
    /// per-fragment flag vector of the applied edit).
    pub fn refresh<V, E, F: Borrow<Fragment<V, E>>>(&mut self, frags: &[F], changed: &[bool]) {
        for (i, f) in frags.iter().enumerate() {
            if !changed.get(i).copied().unwrap_or(false) {
                continue;
            }
            let f = f.borrow();
            self.owned[i] = f.owned_count();
            self.edges[i] = f.edge_count();
            self.mirrors[i] = f.mirror_count();
            self.cut_edges[i] = fragment_cut_edges(f);
        }
    }

    /// Accumulate delta-touch counts (how many vertices each fragment
    /// had seeded/invalidated by recent applies).
    pub fn record_touches(&mut self, per_frag: &[usize]) {
        for (t, &n) in self.touches.iter_mut().zip(per_frag) {
            *t += n as u64;
        }
    }

    /// Number of fragments tracked.
    pub fn num_frags(&self) -> usize {
        self.owned.len()
    }

    /// Snapshot the tracked counts into a report.
    pub fn report(&self) -> BalanceReport {
        let loads = fragment_loads(self.vertex_cut, &self.owned, &self.edges);
        let imbalance = load_ratio(&loads);
        let stats = PartitionStats::from_counts(
            self.owned.clone(),
            self.edges.clone(),
            self.mirrors.clone(),
            self.cut_edges.iter().sum(),
        );
        BalanceReport { stats, loads, touches: self.touches.clone(), imbalance }
    }
}

/// Point-in-time view of partition drift, produced by the monitor.
#[derive(Debug, Clone, PartialEq)]
pub struct BalanceReport {
    /// Full partition statistics (replication factor, skew, balance
    /// ratios) derived from the incrementally maintained counts.
    pub stats: PartitionStats,
    /// Per-fragment load: `owned + stored edges` under edge-cut (moving
    /// a vertex moves its adjacency row), `owned` under vertex-cut
    /// (edges are pair-hash pinned; only ownership migrates).
    pub loads: Vec<u64>,
    /// Cumulative delta-touch counts per fragment since monitoring
    /// began — which fragments the workload is hammering.
    pub touches: Vec<u64>,
    /// `max/mean` over [`loads`](BalanceReport::loads); the number the
    /// policy thresholds on.
    pub imbalance: f64,
}

impl BalanceReport {
    /// True when the load ratio exceeds the policy threshold.
    pub fn over(&self, policy: &BalancePolicy) -> bool {
        self.imbalance > policy.max_imbalance
    }
}

/// A bounded set of ownership moves, ready for [`execute_migration`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MigrationPlan {
    /// `(vertex, destination fragment)`, deduped; under vertex-cut every
    /// destination already holds a copy of the vertex.
    pub moves: Vec<VertexMove>,
    /// Estimated payload of the migration (vertex + carried edge data),
    /// for the `migration_bytes` metric.
    pub bytes: u64,
    /// The `max/mean` load ratio the planner expects after the plan.
    pub predicted_imbalance: f64,
}

impl MigrationPlan {
    /// True when there is nothing to do.
    pub fn is_empty(&self) -> bool {
        self.moves.is_empty()
    }
}

fn fragment_loads(vertex_cut: bool, owned: &[usize], edges: &[usize]) -> Vec<u64> {
    if vertex_cut {
        owned.iter().map(|&o| o as u64).collect()
    } else {
        owned.iter().zip(edges).map(|(&o, &e)| (o + e) as u64).collect()
    }
}

fn load_ratio(loads: &[u64]) -> f64 {
    let total: u64 = loads.iter().sum();
    if total == 0 || loads.is_empty() {
        return 1.0;
    }
    let mean = total as f64 / loads.len() as f64;
    loads.iter().copied().max().unwrap_or(0) as f64 / mean
}

/// Produce a budget-bounded migration plan for the current fragment set.
///
/// Deterministic: fragments are scanned in index order, candidates in
/// local-id order, targets tie-broken by `(cut delta, load, index)`.
/// Returns an empty plan when the partition is already under the policy
/// threshold or nothing movable improves it.
pub fn plan_migration<V, E, F: Borrow<Fragment<V, E>>>(
    frags: &[F],
    policy: &BalancePolicy,
    tracer: &Tracer,
) -> MigrationPlan {
    let view: Vec<&Fragment<V, E>> = frags.iter().map(|f| f.borrow()).collect();
    if view.len() < 2 {
        return MigrationPlan::default();
    }
    let traced = tracer.enabled();
    if traced {
        tracer.begin(pid::DELTA, 0, cat::BALANCE, "plan", Args::new().with("frags", view.len()));
    }
    let plan = if view[0].is_vertex_cut() {
        plan_vertex_cut(&view, policy)
    } else {
        plan_edge_cut(&view, policy)
    };
    if traced {
        tracer.end(
            pid::DELTA,
            0,
            cat::BALANCE,
            "plan",
            Args::new().with("moves", plan.moves.len()).with("bytes", plan.bytes as usize),
        );
    }
    plan
}

/// Greedy edge-cut planner: walk border vertices of the most loaded
/// fragment and pour them into a *sticky* fill target — the least
/// loaded fragment, kept until it reaches the mean — until the ratio is
/// under threshold, the budget is spent, or no candidate improves.
///
/// Concentrating a round's moves on as few destination fragments as
/// possible is deliberate: the executor repacks exactly the fragments
/// that gain or lose owned rows (the rest are metadata patches), so a
/// narrow destination set keeps rebalance latency move-proportional
/// instead of partition-proportional.
fn plan_edge_cut<V, E>(frags: &[&Fragment<V, E>], policy: &BalancePolicy) -> MigrationPlan {
    let m = frags.len();
    let mut loads: Vec<i64> =
        frags.iter().map(|f| (f.owned_count() + f.edge_count()) as i64).collect();
    let total: i64 = loads.iter().sum();
    if total == 0 {
        return MigrationPlan::default();
    }
    let mean = total as f64 / m as f64;

    let mut plan = MigrationPlan::default();
    let mut candidates: Vec<Option<Vec<LocalId>>> = vec![None; m];
    let mut cursor = vec![0usize; m];
    let mut frozen = vec![false; m];
    let mut fill: Option<usize> = None;

    while plan.moves.len() < policy.migration_budget {
        // Most loaded un-frozen fragment, smallest index on ties.
        let Some(src) = (0..m)
            .filter(|&i| !frozen[i])
            .fold(None, |best: Option<usize>, i| match best {
                Some(b) if loads[b] >= loads[i] => Some(b),
                _ => Some(i),
            })
        else {
            break;
        };
        if loads[src] as f64 / mean <= policy.max_imbalance {
            break;
        }
        let f = frags[src];
        let cand = candidates[src].get_or_insert_with(|| {
            // Border vertices first: moving one can heal cut edges.
            // An overloaded fragment with no border (disconnected from
            // the rest) still drains through its plain owned vertices.
            let mut c: Vec<LocalId> =
                f.inner_out().iter().chain(f.inner_in().iter()).copied().collect();
            c.sort_unstable();
            c.dedup();
            if c.is_empty() {
                c = f.owned_vertices().collect();
            }
            c
        });

        let mut chosen: Option<(VertexId, FragId, i64, usize)> = None;
        while cursor[src] < cand.len() {
            let l = cand[cursor[src]];
            cursor[src] += 1;
            let deg = f.neighbors(l).len();
            let w = 1 + deg as i64;
            // Keep pouring into the current fill target while it is
            // still below the mean and can absorb this vertex; pick the
            // least-loaded eligible fragment (smallest index on ties)
            // when it saturates.
            let target = match fill {
                Some(j) if j != src && (loads[j] as f64) < mean && loads[j] + w < loads[src] => {
                    Some(j)
                }
                _ => {
                    let j = (0..m)
                        .filter(|&j| j != src && loads[j] + w < loads[src])
                        .min_by_key(|&j| (loads[j], j));
                    fill = j;
                    j
                }
            };
            if let Some(j) = target {
                chosen = Some((f.global(l), j as FragId, w, deg));
                break;
            }
        }
        match chosen {
            Some((v, to, w, deg)) => {
                loads[src] -= w;
                loads[to as usize] += w;
                plan.moves.push((v, to));
                plan.bytes += (std::mem::size_of::<V>()
                    + deg * (std::mem::size_of::<E>() + std::mem::size_of::<VertexId>()))
                    as u64;
            }
            None => frozen[src] = true,
        }
    }
    plan.predicted_imbalance =
        load_ratio(&loads.iter().map(|&l| l.max(0) as u64).collect::<Vec<_>>());
    plan
}

/// Greedy vertex-cut planner: ownership may only move to a fragment that
/// already holds a copy (edges are pair-hash pinned), so candidates are
/// the replicated border vertices and the move itself is nearly free.
fn plan_vertex_cut<V, E>(frags: &[&Fragment<V, E>], policy: &BalancePolicy) -> MigrationPlan {
    let m = frags.len();
    let mut loads: Vec<i64> = frags.iter().map(|f| f.owned_count() as i64).collect();
    let total: i64 = loads.iter().sum();
    if total == 0 {
        return MigrationPlan::default();
    }
    let mean = total as f64 / m as f64;

    let mut plan = MigrationPlan::default();
    let mut cursor = vec![0usize; m];
    let mut frozen = vec![false; m];

    while plan.moves.len() < policy.migration_budget {
        let Some(src) = (0..m)
            .filter(|&i| !frozen[i])
            .fold(None, |best: Option<usize>, i| match best {
                Some(b) if loads[b] >= loads[i] => Some(b),
                _ => Some(i),
            })
        else {
            break;
        };
        if loads[src] as f64 / mean <= policy.max_imbalance {
            break;
        }
        let f = frags[src];
        // inner_in lists the replicated owned vertices under vertex-cut.
        let border = f.inner_in();
        let mut chosen: Option<(VertexId, FragId)> = None;
        while cursor[src] < border.len() {
            let l = border[cursor[src]];
            cursor[src] += 1;
            let mut best: Option<(i64, FragId)> = None;
            for &h in f.mirror_holders(l) {
                if loads[h as usize] + 1 < loads[src] && best.is_none_or(|b| (loads[h as usize], h) < b)
                {
                    best = Some((loads[h as usize], h));
                }
            }
            if let Some((_, h)) = best {
                chosen = Some((f.global(l), h));
                break;
            }
        }
        match chosen {
            Some((v, to)) => {
                loads[src] -= 1;
                loads[to as usize] += 1;
                plan.moves.push((v, to));
                plan.bytes += std::mem::size_of::<V>().max(1) as u64;
            }
            None => frozen[src] = true,
        }
    }
    plan.predicted_imbalance =
        load_ratio(&loads.iter().map(|&l| l.max(0) as u64).collect::<Vec<_>>());
    plan
}

/// Apply a migration plan in place.
///
/// Dispatches on the cut kind: edge-cut goes through
/// [`migrate_edge_cut_traced`] (ownership + adjacency rows move),
/// vertex-cut through the shared patch path with `owner_overrides`
/// (ownership flips between existing copies). The returned
/// [`AppliedEdit`] carries the [`StateRemap`]s and seeds the session
/// uses to migrate retained warm state.
pub fn execute_migration<V, E>(
    frags: &mut [&mut Fragment<V, E>],
    plan: &MigrationPlan,
    tracer: &Tracer,
) -> AppliedEdit
where
    V: Clone,
    E: Clone + PartialOrd,
{
    if plan.moves.is_empty() {
        return AppliedEdit {
            remaps: frags.iter().map(|f| StateRemap::identity(f.local_count())).collect(),
            seeds: vec![Vec::new(); frags.len()],
            weights_decreased: 0,
            weights_increased: 0,
            changed: vec![false; frags.len()],
        };
    }
    if frags.first().is_some_and(|f| f.is_vertex_cut()) {
        let mut edit = VertexCutEdit::empty(frags.len());
        for &(v, to) in &plan.moves {
            edit.owner_overrides.insert(v, to);
        }
        patch_vertex_cut_traced(frags, &edit, tracer)
    } else {
        migrate_edge_cut_traced(frags, &plan.moves, tracer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aap_graph::generate::small_world;
    use aap_graph::partition::{
        build_fragments_n, build_fragments_vertex_cut_n, vertex_cut_partition,
    };

    /// A deliberately skewed edge-cut assignment: most vertices on
    /// fragment 0.
    fn skewed_frags(m: FragId) -> Vec<Fragment<(), u32>> {
        let g = small_world(120, 3, 0.2, 9);
        let assignment: Vec<FragId> =
            (0..120u32).map(|v| if v < 80 { 0 } else { 1 + (v % (m as u32 - 1)) as FragId }).collect();
        build_fragments_n(&g, &assignment, m as usize)
    }

    #[test]
    fn policy_builder() {
        let p = BalancePolicy::new();
        assert!((p.max_imbalance - 1.15).abs() < 1e-9);
        assert!(!p.auto);
        let p = p.max_imbalance(1.3).migration_budget(7).auto(true);
        assert!((p.max_imbalance - 1.3).abs() < 1e-9);
        assert_eq!(p.migration_budget, 7);
        assert!(p.auto);
    }

    #[test]
    fn monitor_incremental_matches_full_scan() {
        let mut frags = skewed_frags(3);
        let mut mon = BalanceMonitor::new(&frags);
        assert!(mon.report().imbalance > 1.15, "fixture should start skewed");

        let policy = BalancePolicy::new().migration_budget(64);
        let plan = plan_migration(&frags, &policy, &Tracer::default());
        assert!(!plan.is_empty());
        let applied = {
            let mut refs: Vec<&mut Fragment<(), u32>> = frags.iter_mut().collect();
            execute_migration(&mut refs, &plan, &Tracer::default())
        };
        mon.refresh(&frags, &applied.changed);
        mon.record_touches(&applied.seeds.iter().map(|s| s.len()).collect::<Vec<_>>());

        // The incrementally maintained stats equal a from-scratch scan.
        let fresh = BalanceMonitor::new(&frags).report();
        let inc = mon.report();
        assert_eq!(inc.stats, fresh.stats);
        assert_eq!(inc.loads, fresh.loads);
        assert!(inc.touches.iter().sum::<u64>() > 0);
    }

    #[test]
    fn edge_cut_plan_reduces_imbalance_within_budget() {
        let mut frags = skewed_frags(4);
        let before = BalanceMonitor::new(&frags).report().imbalance;
        let policy = BalancePolicy::new().migration_budget(500);
        let plan = plan_migration(&frags, &policy, &Tracer::default());
        assert!(!plan.is_empty());
        assert!(plan.moves.len() <= 500);
        assert!(plan.bytes > 0);
        {
            let mut refs: Vec<&mut Fragment<(), u32>> = frags.iter_mut().collect();
            execute_migration(&mut refs, &plan, &Tracer::default());
        }
        let after = BalanceMonitor::new(&frags).report().imbalance;
        assert!(after < before, "imbalance {before} -> {after} should drop");
        assert!(
            (after - plan.predicted_imbalance).abs() < 0.25,
            "prediction {} vs real {after}",
            plan.predicted_imbalance
        );
    }

    #[test]
    fn vertex_cut_plan_moves_only_to_holders() {
        let g = small_world(80, 3, 0.25, 5);
        let ea = vertex_cut_partition(&g, 4);
        let mut frags = build_fragments_vertex_cut_n(&g, &ea, 4);
        let total_owned: usize = frags.iter().map(|f| f.owned_count()).sum();
        let policy = BalancePolicy::new().max_imbalance(1.0).migration_budget(20);
        let plan = plan_migration(&frags, &policy, &Tracer::default());
        for &(v, to) in &plan.moves {
            let holder = frags.iter().any(|f| {
                f.local(v).is_some_and(|l| f.is_owned(l) && f.mirror_holders(l).contains(&to))
            });
            assert!(holder, "move of {v} targets non-holder {to}");
        }
        if !plan.is_empty() {
            let mut refs: Vec<&mut Fragment<(), u32>> = frags.iter_mut().collect();
            execute_migration(&mut refs, &plan, &Tracer::default());
        }
        assert_eq!(frags.iter().map(|f| f.owned_count()).sum::<usize>(), total_owned);
    }

    #[test]
    fn balanced_partition_yields_empty_plan() {
        let g = small_world(64, 2, 0.1, 2);
        let assignment: Vec<FragId> = (0..64u32).map(|v| (v % 4) as FragId).collect();
        let frags = build_fragments_n(&g, &assignment, 4);
        let plan = plan_migration(&frags, &BalancePolicy::new().max_imbalance(1.5), &Tracer::default());
        assert!(plan.is_empty());
    }
}
