//! The execution backend a [`crate::Session`] drives: the threaded
//! GRAPE+ [`Engine`] or the deterministic [`SimEngine`], behind one
//! trait so the session lifecycle (retained queries, warm-start
//! advances, in-place delta application) is written once.

use aap_core::engine::{RunOutput, RunState};
use aap_core::pie::WarmStart;
use aap_core::{Engine, RunStats};
use aap_graph::mutate::StateRemap;
use aap_graph::{Fragment, LocalId};
use aap_sim::{SimEngine, SimOutput};
use aap_trace::Tracer;
use std::sync::Arc;

/// What a session needs from an engine: fragment access (shared for
/// runs, exclusive for in-place delta application) and the two retained
/// evaluation entry points. Implemented by [`Engine`] (threaded,
/// wall-clock) and [`SimEngine`] (single-threaded, virtual time — its
/// timelines are dropped at this boundary; drive a `SimEngine` directly
/// when you need them).
pub trait Backend<V, E>: Sized + 'static {
    /// The fragments this backend computes over.
    fn fragments(&self) -> &[Arc<Fragment<V, E>>];

    /// Exclusive access to the fragments for in-place mutation; `None`
    /// while any `Arc` is shared (a run output still borrows them).
    fn fragments_mut(&mut self) -> Option<Vec<&mut Fragment<V, E>>>;

    /// Copy-on-write access to the fragments for in-place mutation
    /// *while a consistent cut shares them*: shared `Arc`s detach by
    /// cloning the fragment (the cut keeps the pre-apply bytes),
    /// exclusive ones borrow in place with no copy. Only called when
    /// `V: Clone, E: Clone` holds — i.e. from `Session::apply`, whose
    /// delta application already requires it.
    fn fragments_cow(&mut self) -> Vec<&mut Fragment<V, E>>
    where
        V: Clone,
        E: Clone;

    /// How many worker threads in-place delta application may use for
    /// the per-touched-fragment repacks (`apply_to_fragments_par`).
    /// Defaults to 1 (serial); the threaded engine reuses its configured
    /// worker count, the simulator stays deterministic-serial.
    fn apply_threads(&self) -> usize {
        1
    }

    /// Hand the backend a [`Tracer`] so its internal runs emit engine-
    /// level events (round/phase spans, message instants) alongside the
    /// session's own. Default: ignore — a backend without built-in
    /// instrumentation still serves sessions.
    fn set_tracer(&mut self, _tracer: Tracer) {}

    /// Cold evaluation retaining per-fragment states (`run_retained`).
    fn run_retained<P>(&self, prog: &P, q: &P::Query) -> (P::Out, RunStats, RunState<P::State>)
    where
        P: WarmStart<V, E>;

    /// Warm-start evaluation from retained state after a delta
    /// (`run_incremental`): round 0 is `warm_eval` through the remaps,
    /// seeds, and invalidated sets; `state` is refreshed in place.
    fn run_incremental<P>(
        &self,
        prog: &P,
        q: &P::Query,
        remaps: &[StateRemap],
        seeds: &[Vec<LocalId>],
        invalid: &[Vec<LocalId>],
        state: &mut RunState<P::State>,
    ) -> (P::Out, RunStats)
    where
        P: WarmStart<V, E>;
}

impl<V, E> Backend<V, E> for Engine<V, E>
where
    V: Send + Sync + 'static,
    E: Send + Sync + 'static,
{
    fn fragments(&self) -> &[Arc<Fragment<V, E>>] {
        Engine::fragments(self)
    }

    fn fragments_mut(&mut self) -> Option<Vec<&mut Fragment<V, E>>> {
        Engine::fragments_mut(self)
    }

    fn fragments_cow(&mut self) -> Vec<&mut Fragment<V, E>>
    where
        V: Clone,
        E: Clone,
    {
        Engine::fragments_cow(self)
    }

    fn apply_threads(&self) -> usize {
        self.opts().threads
    }

    fn set_tracer(&mut self, tracer: Tracer) {
        Engine::set_tracer(self, tracer);
    }

    fn run_retained<P>(&self, prog: &P, q: &P::Query) -> (P::Out, RunStats, RunState<P::State>)
    where
        P: WarmStart<V, E>,
    {
        let (RunOutput { out, stats }, state) = Engine::run_retained(self, prog, q);
        (out, stats, state)
    }

    fn run_incremental<P>(
        &self,
        prog: &P,
        q: &P::Query,
        remaps: &[StateRemap],
        seeds: &[Vec<LocalId>],
        invalid: &[Vec<LocalId>],
        state: &mut RunState<P::State>,
    ) -> (P::Out, RunStats)
    where
        P: WarmStart<V, E>,
    {
        let RunOutput { out, stats } =
            Engine::run_incremental(self, prog, q, remaps, seeds, invalid, state);
        (out, stats)
    }
}

impl<V, E> Backend<V, E> for SimEngine<V, E>
where
    V: 'static,
    E: 'static,
{
    fn fragments(&self) -> &[Arc<Fragment<V, E>>] {
        SimEngine::fragments(self)
    }

    fn fragments_mut(&mut self) -> Option<Vec<&mut Fragment<V, E>>> {
        SimEngine::fragments_mut(self)
    }

    fn fragments_cow(&mut self) -> Vec<&mut Fragment<V, E>>
    where
        V: Clone,
        E: Clone,
    {
        SimEngine::fragments_cow(self)
    }

    fn set_tracer(&mut self, tracer: Tracer) {
        SimEngine::set_tracer(self, tracer);
    }

    fn run_retained<P>(&self, prog: &P, q: &P::Query) -> (P::Out, RunStats, RunState<P::State>)
    where
        P: WarmStart<V, E>,
    {
        let (SimOutput { out, stats, timelines: _ }, state) =
            SimEngine::run_retained(self, prog, q);
        (out, stats, state)
    }

    fn run_incremental<P>(
        &self,
        prog: &P,
        q: &P::Query,
        remaps: &[StateRemap],
        seeds: &[Vec<LocalId>],
        invalid: &[Vec<LocalId>],
        state: &mut RunState<P::State>,
    ) -> (P::Out, RunStats)
    where
        P: WarmStart<V, E>,
    {
        let SimOutput { out, stats, timelines: _ } =
            SimEngine::run_incremental(self, prog, q, remaps, seeds, invalid, state);
        (out, stats)
    }
}
