//! The durable side of a session: an epoch-stamped file layout inside
//! one directory, flipped atomically by a `MANIFEST` rename.
//!
//! ```text
//! <dir>/MANIFEST                   "epoch=N\nchain=N,M,...,B"
//! <dir>/graph.N.snap               fragment set: full (FRAG) at a
//!                                  baseline, changed subset (DFRG) at
//!                                  a differential epoch
//! <dir>/state.<program>.N.snap     one per program whose state moved
//! <dir>/deltas.N.dlog              append-only log of applied deltas
//! ```
//!
//! The manifest names the whole **epoch chain**, newest first, ending
//! at a full baseline; restore resolves the newest version of each
//! fragment (and each program-state shard) across it. A single-epoch
//! manifest carries no `chain=` line, so directories written by the
//! pre-differential format (and by `differential(false)` policies)
//! parse unchanged.
//!
//! A checkpoint writes the *next* epoch's files first and flips the
//! manifest last, so a crash at any point leaves a consistent
//! generation: either the old chain (manifest not yet flipped — its
//! files + the complete old log still replay to the current state) or
//! the new one. Only the newest epoch's delta log is live: flipping the
//! manifest is also the **log compaction** point — every record of the
//! superseded log is embodied by the new epoch's files, and the sweep
//! deletes it, keeping directory size proportional to churn rather than
//! to history.
//!
//! All `Codec` obligations are captured here as plain `fn` pointers at
//! [`DurableSpec::new`] time, so `Session::apply`/`checkpoint` need no
//! serialization bounds of their own — and crash-injection tests can
//! swap any single step (fragment save, manifest flip) for a failing
//! stand-in to cut the process "mid-checkpoint" at an exact point.

use crate::{CheckpointReport, DurabilityPolicy, SessionError};
use aap_core::PortableRunState;
use aap_delta::GraphDelta;
use aap_graph::Fragment;
use aap_snapshot::{
    diff_snapshot_to_bytes, load_fragment_parts, snapshot_to_bytes, write_file_atomic, Codec,
    DeltaLog, FragmentParts, SnapshotError,
};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

pub(crate) const MANIFEST_FILE: &str = "MANIFEST";

pub(crate) fn manifest_path(dir: &Path) -> PathBuf {
    dir.join(MANIFEST_FILE)
}

pub(crate) fn graph_path(dir: &Path, epoch: u64) -> PathBuf {
    dir.join(format!("graph.{epoch}.snap"))
}

pub(crate) fn state_path(dir: &Path, epoch: u64, name: &str) -> PathBuf {
    dir.join(format!("state.{name}.{epoch}.snap"))
}

pub(crate) fn log_path(dir: &Path, epoch: u64) -> PathBuf {
    dir.join(format!("deltas.{epoch}.dlog"))
}

/// Program names that have a `state.<name>.<epoch>.snap` file at any
/// chain epoch — what restore checks its registrations against.
/// Checkpoint writes state files only for *registered* programs and its
/// sweep keeps only chain files, so an unregistered-but-present state
/// would be silently dropped at the next compaction; restore refuses
/// that instead of losing durable warm state.
pub(crate) fn state_file_programs(dir: &Path, chain: &[u64]) -> Result<Vec<String>, SessionError> {
    let suffixes: Vec<String> = chain.iter().map(|e| format!(".{e}.snap")).collect();
    let mut out = Vec::new();
    let entries = std::fs::read_dir(dir).map_err(|e| SessionError::Io(dir.to_path_buf(), e))?;
    for entry in entries {
        let entry = entry.map_err(|e| SessionError::Io(dir.to_path_buf(), e))?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(rest) = name.strip_prefix("state.") else { continue };
        for suffix in &suffixes {
            if let Some(prog) = rest.strip_suffix(suffix.as_str()) {
                // Program names are [A-Za-z0-9_-]+ (enforced at
                // registration), so a dot means this is some other file.
                if !prog.is_empty() && !prog.contains('.') {
                    out.push(prog.to_string());
                    break;
                }
            }
        }
    }
    out.sort_unstable();
    out.dedup();
    Ok(out)
}

/// What kind of durable file a name is, and which epoch it belongs to.
enum DurableFile {
    /// `graph.<e>.snap` or `state.<name>.<e>.snap`.
    Snap(u64),
    /// `deltas.<e>.dlog`.
    Log(u64),
}

fn classify(name: &str) -> Option<DurableFile> {
    let snap = name
        .strip_prefix("graph.")
        .and_then(|r| r.strip_suffix(".snap"))
        .or_else(|| {
            name.strip_prefix("state.")
                .and_then(|r| r.strip_suffix(".snap"))
                .and_then(|r| r.rsplit_once('.').map(|(_, e)| e))
        })
        .and_then(|e| e.parse().ok());
    if let Some(e) = snap {
        return Some(DurableFile::Snap(e));
    }
    name.strip_prefix("deltas.")
        .and_then(|r| r.strip_suffix(".dlog"))
        .and_then(|e| e.parse().ok())
        .map(DurableFile::Log)
}

/// Delete every durable file the chain `keep` (newest first) does not
/// reference, best-effort: snapshot/state files of every chain epoch
/// stay, but only the **newest** epoch's delta log is live — older
/// logs are fully embodied by the checkpoints above them, so sweeping
/// them *is* the log compaction. Called after a manifest flip
/// (checkpoint) and after a successful restore: a crash *between* a
/// flip and its cleanup — or mid-checkpoint, leaving half-written
/// next-epoch files the manifest never adopted — would otherwise strand
/// whole snapshot generations forever.
pub(crate) fn sweep_stale_epochs(dir: &Path, keep: &[u64]) {
    let Ok(entries) = std::fs::read_dir(dir) else { return };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let stale = match classify(name) {
            Some(DurableFile::Snap(e)) => !keep.contains(&e),
            Some(DurableFile::Log(e)) => e != keep[0],
            None => false,
        };
        if stale {
            let _ = std::fs::remove_file(entry.path());
        }
    }
}

/// Read the manifest as an epoch chain, newest first; `Ok(None)` when
/// the directory holds none (a fresh directory), a tagged error when it
/// exists but does not parse. A manifest without a `chain=` line — the
/// pre-differential format — is the single-epoch chain `[N]`.
pub(crate) fn read_manifest(dir: &Path) -> Result<Option<Vec<u64>>, SessionError> {
    let path = manifest_path(dir);
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(SessionError::Io(path, e)),
    };
    let bad = |detail: String| SessionError::Manifest { path: path.clone(), detail };
    let mut lines = text.lines();
    let first = lines.next().unwrap_or("").trim();
    let epoch = first
        .strip_prefix("epoch=")
        .and_then(|v| v.parse::<u64>().ok())
        .ok_or_else(|| bad(format!("expected \"epoch=N\", found {first:?}")))?;
    let mut chain = vec![epoch];
    if let Some(line) = lines.next() {
        let line = line.trim();
        if !line.is_empty() {
            let parsed: Option<Vec<u64>> = line
                .strip_prefix("chain=")
                .map(|v| v.split(',').map(|e| e.trim().parse::<u64>()))
                .and_then(|it| it.collect::<Result<Vec<u64>, _>>().ok());
            chain =
                parsed.ok_or_else(|| bad(format!("expected \"chain=N,M,...\", found {line:?}")))?;
            if chain.first() != Some(&epoch) {
                return Err(bad(format!("chain does not start at epoch {epoch}: {line:?}")));
            }
            if !chain.windows(2).all(|w| w[0] > w[1]) {
                return Err(bad(format!("chain is not strictly decreasing: {line:?}")));
            }
        }
    }
    Ok(Some(chain))
}

/// Write the manifest atomically (temp file + **fsync** + rename, via
/// the shared [`aap_snapshot::write_file_atomic`]): the flip is the
/// commit point of `open()`, `checkpoint()`, and the background cut —
/// checkpoint deletes superseded files right after it, so the flip
/// itself must be crash-durable, not merely rename-atomic. Single-epoch
/// chains omit the `chain=` line, staying byte-identical to the
/// pre-differential manifest format.
pub fn write_manifest(dir: &Path, chain: &[u64]) -> Result<(), SessionError> {
    let mut text = format!("epoch={}\n", chain[0]);
    if chain.len() > 1 {
        let epochs: Vec<String> = chain.iter().map(|e| e.to_string()).collect();
        text.push_str(&format!("chain={}\n", epochs.join(",")));
    }
    write_file_atomic(&manifest_path(dir), text.as_bytes())?;
    Ok(())
}

pub(crate) type WriteDeltaFn<V, E> =
    fn(&mut DeltaLog, &GraphDelta<V, E>) -> Result<(), SnapshotError>;
/// Full (baseline) fragment save; returns the bytes written.
pub type SaveFragsFn<V, E> = fn(&Path, &[Arc<Fragment<V, E>>]) -> Result<u64, SnapshotError>;
/// Differential fragment save: only fragments whose `dirty` bit is set
/// are written (tagged with their ids); returns the bytes written.
pub type SaveDiffFragsFn<V, E> =
    fn(&Path, u16, &[Arc<Fragment<V, E>>], &[bool]) -> Result<u64, SnapshotError>;
/// Parse one chain file's fragments (full or differential).
pub(crate) type LoadFragPartsFn<V, E> = fn(&Path) -> Result<FragmentParts<V, E>, SnapshotError>;
pub(crate) type ReadLogFn<V, E> = fn(&Path) -> Result<(Vec<GraphDelta<V, E>>, bool), SnapshotError>;
/// The manifest flip — a vtable entry so crash tests can fail (or
/// intercept) the exact commit point.
pub type WriteManifestFn = fn(&Path, &[u64]) -> Result<(), SessionError>;

/// The serialization vtable of a durable session, captured where the
/// `Codec` bounds hold (builder `durability()`/`restore()`); everything
/// downstream — including the background checkpoint thread — calls
/// through plain `fn` pointers.
pub(crate) struct DurableSpec<V, E> {
    pub(crate) dir: PathBuf,
    pub(crate) write_delta: WriteDeltaFn<V, E>,
    pub(crate) save_frags: SaveFragsFn<V, E>,
    pub(crate) save_diff_frags: SaveDiffFragsFn<V, E>,
    pub(crate) load_frag_parts: LoadFragPartsFn<V, E>,
    pub(crate) read_log: ReadLogFn<V, E>,
    pub(crate) write_manifest: WriteManifestFn,
}

fn write_delta_impl<V: Codec, E: Codec>(
    log: &mut DeltaLog,
    delta: &GraphDelta<V, E>,
) -> Result<(), SnapshotError> {
    log.write_delta(delta)
}

fn save_frags_impl<V: Codec, E: Codec>(
    path: &Path,
    frags: &[Arc<Fragment<V, E>>],
) -> Result<u64, SnapshotError> {
    // Topology only: per-program states live in their own files.
    let bytes = snapshot_to_bytes::<V, E, (), _>(frags, None::<&PortableRunState<()>>);
    write_file_atomic(path, &bytes)?;
    Ok(bytes.len() as u64)
}

fn save_diff_frags_impl<V: Codec, E: Codec>(
    path: &Path,
    num_frags: u16,
    frags: &[Arc<Fragment<V, E>>],
    dirty: &[bool],
) -> Result<u64, SnapshotError> {
    let subset: Vec<&Fragment<V, E>> =
        frags.iter().zip(dirty).filter(|(_, d)| **d).map(|(f, _)| &**f).collect();
    let bytes = diff_snapshot_to_bytes(num_frags, &subset);
    write_file_atomic(path, &bytes)?;
    Ok(bytes.len() as u64)
}

fn load_frag_parts_impl<V: Codec, E: Codec>(
    path: &Path,
) -> Result<FragmentParts<V, E>, SnapshotError> {
    load_fragment_parts(path)
}

/// Restore reads the log through [`DeltaLog::recover`], not the strict
/// `replay`: a crash mid-append — the scenario restore exists for —
/// leaves a torn, never-acknowledged tail record, which is dropped and
/// truncated away so the log stays appendable. Header/IO errors still
/// fail (a foreign or unreadable file is not a torn write).
fn read_log_impl<V: Codec, E: Codec>(
    path: &Path,
) -> Result<(Vec<GraphDelta<V, E>>, bool), SnapshotError> {
    DeltaLog::recover::<V, E, _>(path)
}

impl<V: Codec, E: Codec> DurableSpec<V, E> {
    pub(crate) fn new(dir: PathBuf) -> Self {
        DurableSpec {
            dir,
            write_delta: write_delta_impl::<V, E>,
            save_frags: save_frags_impl::<V, E>,
            save_diff_frags: save_diff_frags_impl::<V, E>,
            load_frag_parts: load_frag_parts_impl::<V, E>,
            read_log: read_log_impl::<V, E>,
            write_manifest,
        }
    }
}

/// Per-shard fingerprints of one program's last-checkpointed state: a
/// CRC32 per fragment shard plus one over the encoded retained query.
/// A differential checkpoint writes only the shards whose fingerprint
/// moved — exact byte-level dirtiness, independent of which strategy
/// advanced the program.
#[derive(Debug, Clone)]
pub(crate) struct StateCrcs {
    pub(crate) query: u32,
    pub(crate) shards: Vec<u32>,
}

/// The completion cell a background cut publishes into: the report (or
/// the failure rendered to a string — `SnapshotError` is not `Clone`)
/// plus a condvar for blocking waiters.
pub(crate) type CheckpointCell = Arc<(Mutex<Option<Result<CheckpointReport, String>>>, Condvar)>;

/// Writer-side state of an in-flight background checkpoint: the cut was
/// taken (fragment `Arc`s cloned, states encoded, next epoch's log
/// created), the serialize-and-flip runs on `handle`, and until the
/// session harvests the result every applied delta is written to
/// **both** logs — so whichever epoch a crash leaves committed has a
/// complete log.
pub(crate) struct PendingCut {
    /// The next epoch's log, receiving dual-written deltas.
    pub(crate) new_log: DeltaLog,
    /// The chain the background thread commits (newest first).
    pub(crate) new_chain: Vec<u64>,
    /// Dirty set captured (and reset) at the cut — ORed back on failure
    /// so the fragments it named are still written by the next attempt.
    pub(crate) cut_dirty: Vec<bool>,
    /// State fingerprints as of the cut, installed on success.
    pub(crate) new_crcs: HashMap<String, StateCrcs>,
    /// Records dual-written to `new_log` since the cut.
    pub(crate) new_log_records: u64,
    /// A log append failed *after* the cut: the new epoch's log is also
    /// missing that delta, so a successful flip must NOT clear the
    /// wedge latch.
    pub(crate) wedged_since_cut: bool,
    pub(crate) handle: Option<JoinHandle<()>>,
    pub(crate) result: CheckpointCell,
}

/// The live durable attachment of an open session: the spec and policy
/// plus the current epoch chain, its open append log, and differential
/// bookkeeping.
///
/// `log_wedged` latches when a delta was applied in memory but its log
/// append failed — from that point the on-disk history is missing a
/// delta, so replaying it would silently diverge from the live state.
/// Further applies are refused until a successful `checkpoint()`
/// re-baselines (the fresh epoch embodies the unlogged delta and opens
/// an empty log), which clears the latch.
pub(crate) struct Durable<V, E> {
    pub(crate) spec: DurableSpec<V, E>,
    pub(crate) policy: DurabilityPolicy,
    /// The committed epoch chain, newest first (`chain[0]` is current).
    pub(crate) chain: Vec<u64>,
    pub(crate) log: DeltaLog,
    pub(crate) log_wedged: bool,
    /// Per-fragment: persisted bytes changed since the last checkpoint
    /// (the union of `Applied::changed` over applies) — what the next
    /// differential checkpoint writes.
    pub(crate) dirty: Vec<bool>,
    /// Per-program state fingerprints as of the last checkpoint; absent
    /// entries (fresh open, post-restore) force a full state write.
    pub(crate) state_crcs: HashMap<String, StateCrcs>,
    /// Records in the current log (to be reported as compacted when the
    /// next checkpoint supersedes it).
    pub(crate) log_records: u64,
    /// Applies since the last checkpoint (drives `checkpoint_every`).
    pub(crate) applies_since_checkpoint: u64,
    /// An in-flight background cut, if any.
    pub(crate) pending: Option<PendingCut>,
}

impl<V, E> Durable<V, E> {
    pub(crate) fn epoch(&self) -> u64 {
        self.chain[0]
    }
}
