//! The durable side of a session: an epoch-stamped file layout inside
//! one directory, flipped atomically by a `MANIFEST` rename.
//!
//! ```text
//! <dir>/MANIFEST                   "epoch=N"  (atomic rename)
//! <dir>/graph.N.snap               the fragment set (FRAG-only snapshot)
//! <dir>/state.<program>.N.snap     one per program with retained state
//! <dir>/deltas.N.dlog              append-only log of applied deltas
//! ```
//!
//! A checkpoint writes the *next* epoch's files first and flips the
//! manifest last, so a crash at any point leaves a consistent
//! generation: either the old epoch (manifest not yet flipped — its
//! snapshot + its complete log still replay to the current state) or
//! the new one (flipped — the fresh snapshot with an empty log).
//! Superseded files are deleted best-effort after the flip.
//!
//! All `Codec` obligations are captured here as plain `fn` pointers at
//! [`DurableSpec::new`] time, so `Session::apply`/`checkpoint` need no
//! serialization bounds of their own.

use crate::SessionError;
use aap_core::PortableRunState;
use aap_delta::GraphDelta;
use aap_graph::Fragment;
use aap_snapshot::{load_snapshot, save_snapshot, Codec, DeltaLog, SnapshotError};
use std::path::{Path, PathBuf};
use std::sync::Arc;

pub(crate) const MANIFEST_FILE: &str = "MANIFEST";

pub(crate) fn manifest_path(dir: &Path) -> PathBuf {
    dir.join(MANIFEST_FILE)
}

pub(crate) fn graph_path(dir: &Path, epoch: u64) -> PathBuf {
    dir.join(format!("graph.{epoch}.snap"))
}

pub(crate) fn state_path(dir: &Path, epoch: u64, name: &str) -> PathBuf {
    dir.join(format!("state.{name}.{epoch}.snap"))
}

pub(crate) fn log_path(dir: &Path, epoch: u64) -> PathBuf {
    dir.join(format!("deltas.{epoch}.dlog"))
}

/// Program names that have a `state.<name>.<epoch>.snap` file in `dir`
/// — what restore checks its registrations against. Checkpoint writes
/// state files only for *registered* programs and checkpoint's cleanup
/// deletes only registered names, so an unregistered-but-present state
/// would be silently dropped at the next checkpoint; restore refuses
/// that instead of losing durable warm state.
pub(crate) fn state_file_programs(dir: &Path, epoch: u64) -> Result<Vec<String>, SessionError> {
    let suffix = format!(".{epoch}.snap");
    let mut out = Vec::new();
    let entries = std::fs::read_dir(dir).map_err(|e| SessionError::Io(dir.to_path_buf(), e))?;
    for entry in entries {
        let entry = entry.map_err(|e| SessionError::Io(dir.to_path_buf(), e))?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(prog) = name.strip_prefix("state.").and_then(|r| r.strip_suffix(&suffix)) {
            // Program names are [A-Za-z0-9_-]+ (enforced at
            // registration), so a dot means this is some other file.
            if !prog.is_empty() && !prog.contains('.') {
                out.push(prog.to_string());
            }
        }
    }
    out.sort_unstable();
    Ok(out)
}

/// The epoch a durable file name belongs to, if it is one of ours:
/// `graph.<e>.snap`, `deltas.<e>.dlog`, or `state.<name>.<e>.snap`.
fn file_epoch(name: &str) -> Option<u64> {
    name.strip_prefix("graph.")
        .and_then(|r| r.strip_suffix(".snap"))
        .or_else(|| name.strip_prefix("deltas.").and_then(|r| r.strip_suffix(".dlog")))
        .or_else(|| {
            name.strip_prefix("state.")
                .and_then(|r| r.strip_suffix(".snap"))
                .and_then(|r| r.rsplit_once('.').map(|(_, e)| e))
        })
        .and_then(|e| e.parse().ok())
}

/// Delete every durable file whose epoch differs from `keep`
/// (best-effort). Called after a manifest flip (checkpoint) and after a
/// successful restore: a crash *between* a flip and its cleanup — or
/// mid-checkpoint, leaving half-written next-epoch files the manifest
/// never adopted — would otherwise strand whole snapshot generations
/// forever, since ordinary cleanup only targets the immediate
/// predecessor epoch.
pub(crate) fn sweep_stale_epochs(dir: &Path, keep: u64) {
    let Ok(entries) = std::fs::read_dir(dir) else { return };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if file_epoch(name).is_some_and(|e| e != keep) {
            let _ = std::fs::remove_file(entry.path());
        }
    }
}

/// Read the manifest; `Ok(None)` when the directory holds none (a fresh
/// directory), a tagged error when it exists but does not parse.
pub(crate) fn read_manifest(dir: &Path) -> Result<Option<u64>, SessionError> {
    let path = manifest_path(dir);
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(SessionError::Io(path, e)),
    };
    let epoch = text.trim().strip_prefix("epoch=").and_then(|v| v.parse::<u64>().ok()).ok_or_else(
        || SessionError::Manifest {
            path: path.clone(),
            detail: format!("expected \"epoch=N\", found {:?}", text.trim()),
        },
    )?;
    Ok(Some(epoch))
}

/// Write the manifest atomically (temp file + **fsync** + rename, via
/// the shared [`aap_snapshot::write_file_atomic`]): the epoch flip is
/// the commit point of both `open()` initialization and `checkpoint()`
/// — checkpoint deletes the *old* epoch's files right after it, so the
/// flip itself must be crash-durable, not merely rename-atomic.
pub(crate) fn write_manifest(dir: &Path, epoch: u64) -> Result<(), SessionError> {
    let path = manifest_path(dir);
    aap_snapshot::write_file_atomic(&path, format!("epoch={epoch}\n").as_bytes())?;
    Ok(())
}

pub(crate) type WriteDeltaFn<V, E> =
    fn(&mut DeltaLog, &GraphDelta<V, E>) -> Result<(), SnapshotError>;
pub(crate) type SaveFragsFn<V, E> = fn(&Path, &[Arc<Fragment<V, E>>]) -> Result<(), SnapshotError>;
pub(crate) type LoadFragsFn<V, E> = fn(&Path) -> Result<Vec<Fragment<V, E>>, SnapshotError>;
pub(crate) type ReadLogFn<V, E> = fn(&Path) -> Result<(Vec<GraphDelta<V, E>>, bool), SnapshotError>;

/// The serialization vtable of a durable session, captured where the
/// `Codec` bounds hold (builder `durable()`/`restore()`); everything
/// downstream calls through plain `fn` pointers.
pub(crate) struct DurableSpec<V, E> {
    pub(crate) dir: PathBuf,
    pub(crate) write_delta: WriteDeltaFn<V, E>,
    pub(crate) save_frags: SaveFragsFn<V, E>,
    pub(crate) load_frags: LoadFragsFn<V, E>,
    pub(crate) read_log: ReadLogFn<V, E>,
}

fn write_delta_impl<V: Codec, E: Codec>(
    log: &mut DeltaLog,
    delta: &GraphDelta<V, E>,
) -> Result<(), SnapshotError> {
    log.write_delta(delta)
}

fn save_frags_impl<V: Codec, E: Codec>(
    path: &Path,
    frags: &[Arc<Fragment<V, E>>],
) -> Result<(), SnapshotError> {
    // Topology only: per-program states live in their own files.
    save_snapshot::<V, E, (), _, _>(path, frags, None::<&PortableRunState<()>>)
}

fn load_frags_impl<V: Codec, E: Codec>(path: &Path) -> Result<Vec<Fragment<V, E>>, SnapshotError> {
    Ok(load_snapshot::<V, E, (), _>(path)?.fragments)
}

/// Restore reads the log through [`DeltaLog::recover`], not the strict
/// `replay`: a crash mid-append — the scenario restore exists for —
/// leaves a torn, never-acknowledged tail record, which is dropped and
/// truncated away so the log stays appendable. Header/IO errors still
/// fail (a foreign or unreadable file is not a torn write).
fn read_log_impl<V: Codec, E: Codec>(
    path: &Path,
) -> Result<(Vec<GraphDelta<V, E>>, bool), SnapshotError> {
    DeltaLog::recover::<V, E, _>(path)
}

impl<V: Codec, E: Codec> DurableSpec<V, E> {
    pub(crate) fn new(dir: PathBuf) -> Self {
        DurableSpec {
            dir,
            write_delta: write_delta_impl::<V, E>,
            save_frags: save_frags_impl::<V, E>,
            load_frags: load_frags_impl::<V, E>,
            read_log: read_log_impl::<V, E>,
        }
    }
}

/// The live durable attachment of an open session: the spec plus the
/// current epoch and its open append log.
///
/// `log_wedged` latches when a delta was applied in memory but its log
/// append failed — from that point the on-disk history is missing a
/// delta, so replaying it would silently diverge from the live state.
/// Further applies are refused until a successful `checkpoint()`
/// re-baselines (the fresh snapshot embodies the unlogged delta and
/// opens an empty log), which clears the latch.
pub(crate) struct Durable<V, E> {
    pub(crate) spec: DurableSpec<V, E>,
    pub(crate) epoch: u64,
    pub(crate) log: DeltaLog,
    pub(crate) log_wedged: bool,
}
