//! Type-erased program slots: one registered PIE program with its
//! retained query, [`RunState`], and cached output, behind an object-safe
//! trait so a [`crate::Session`] can hold SSSP, CC, and future programs
//! with heterogeneous `Query`/`State`/`Out` types in one map.
//!
//! The erased surface is exactly the per-program half of the session
//! lifecycle: *plan* (pre-apply invalidation planning), *advance* (warm
//! or cold evaluation after the shared fragment apply), and the durable
//! *save*/*load* hooks. The typed half — `query` — goes through a
//! downcast in `Session::query`, which re-unites the caller's program
//! type with the slot's.

use crate::backend::Backend;
use crate::SessionError;
use aap_core::engine::RunState;
use aap_core::pie::WarmStart;
use aap_core::{Engine, RunStats, WarmStrategy};
use aap_delta::{plan_incremental, remap_invalid, Applied, GraphDelta};
use aap_graph::{Fragment, LocalId};
use aap_sim::SimEngine;
use aap_snapshot::{load_program_state, save_program_state, Codec, SnapshotError};
use std::any::Any;
use std::marker::PhantomData;
use std::path::Path;
use std::sync::Arc;

/// The pre-apply half of one program's delta handling: the strategy its
/// `delta_strategy` chose and, for `warm-increase`, the invalidated
/// sets in **old** local ids (remapped after the apply).
pub(crate) struct Planned {
    pub(crate) strategy: WarmStrategy,
    pub(crate) invalid_old: Vec<Vec<LocalId>>,
}

/// What one program's advance did, for the session's apply report.
pub(crate) struct SlotAdvance {
    pub(crate) strategy: WarmStrategy,
    pub(crate) stats: RunStats,
}

/// The object-safe slot surface (see module docs). `Any` is a supertrait
/// so `Session::query` can downcast back to the concrete [`Slot`].
pub(crate) trait AnySlot<V, E, B>: Any {
    fn as_any(&self) -> &dyn Any;
    fn as_any_mut(&mut self) -> &mut dyn Any;
    /// Pre-apply planning on the old fragments; `None` when no state is
    /// retained yet (nothing to advance).
    fn plan(&mut self, frags: &[&Fragment<V, E>], delta: &GraphDelta<V, E>) -> Option<Planned>;
    /// Post-apply advance: warm (`run_incremental` through the applied
    /// remaps/seeds) or cold (`run_retained`), refreshing the cached
    /// output and the state's plan cache.
    fn advance(
        &mut self,
        backend: &B,
        applied: &Applied,
        planned: Option<Planned>,
    ) -> Option<SlotAdvance>;
    /// Persist query + exported state to `path`; `Ok(false)` when the
    /// slot has no state yet (nothing written).
    fn save_state(&self, path: &Path, frags: &[Arc<Fragment<V, E>>])
        -> Result<bool, SnapshotError>;
    /// Load query + state from `path` (if it exists), attach against the
    /// backend's fragments, and settle non-identity remaps through one
    /// warm round. `Ok(false)` when no file exists.
    fn load_state(&mut self, path: &Path, backend: &B) -> Result<bool, SessionError>;
}

/// The concrete slot for program `P`.
pub(crate) struct Slot<V, E, P>
where
    P: WarmStart<V, E>,
{
    prog: P,
    query: Option<P::Query>,
    state: Option<RunState<P::State>>,
    out: Option<P::Out>,
    _marker: PhantomData<fn() -> (V, E)>,
}

impl<V, E, P> Slot<V, E, P>
where
    P: WarmStart<V, E>,
    P::Query: Clone + PartialEq,
    P::Out: Clone,
{
    pub(crate) fn new(prog: P) -> Self {
        Slot { prog, query: None, state: None, out: None, _marker: PhantomData }
    }

    /// Serve a query: from the cached fixpoint when `q` matches the
    /// retained query, otherwise by a cold retained run that replaces
    /// the slot's state (the new query becomes the one future deltas
    /// warm-advance).
    pub(crate) fn query<B: Backend<V, E>>(&mut self, backend: &B, q: &P::Query) -> P::Out {
        if let (Some(cq), Some(out)) = (&self.query, &self.out) {
            if cq == q {
                return out.clone();
            }
        }
        let (out, _stats, mut state) = backend.run_retained(&self.prog, q);
        self.prog.refresh_plan_cache(&out, state.plan_cache_mut());
        self.query = Some(q.clone());
        self.state = Some(state);
        self.out = Some(out.clone());
        out
    }

    /// The retained state, if a query materialized one (test/diagnostic
    /// access through `Session::run_state`).
    pub(crate) fn state(&self) -> Option<&RunState<P::State>> {
        self.state.as_ref()
    }

    /// The retained query, if any.
    pub(crate) fn current_query(&self) -> Option<&P::Query> {
        self.query.as_ref()
    }

    /// The cached assembled output, if any (zero-copy serving path).
    pub(crate) fn output(&self) -> Option<&P::Out> {
        self.out.as_ref()
    }
}

impl<V, E, B, P> AnySlot<V, E, B> for Slot<V, E, P>
where
    V: Clone + Send + Sync + 'static,
    E: Clone + PartialOrd + Send + Sync + 'static,
    B: Backend<V, E>,
    P: WarmStart<V, E> + 'static,
    P::Query: Clone + PartialEq + Codec + 'static,
    P::State: Clone + Codec,
    P::Out: Clone + 'static,
{
    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }

    fn plan(&mut self, frags: &[&Fragment<V, E>], delta: &GraphDelta<V, E>) -> Option<Planned> {
        let q = self.query.clone()?;
        let state = self.state.as_mut()?;
        let (strategy, invalid_old) = plan_incremental(frags, &self.prog, &q, delta, state);
        Some(Planned { strategy, invalid_old })
    }

    fn advance(
        &mut self,
        backend: &B,
        applied: &Applied,
        planned: Option<Planned>,
    ) -> Option<SlotAdvance> {
        let planned = planned?;
        let q = self.query.clone()?;
        let (out, stats) = if planned.strategy.is_warm() {
            let state = self.state.as_mut()?;
            let invalid = remap_invalid(planned.invalid_old, applied);
            let (out, stats) = backend.run_incremental(
                &self.prog,
                &q,
                &applied.remaps,
                &applied.seeds,
                &invalid,
                state,
            );
            self.prog.refresh_plan_cache(&out, state.plan_cache_mut());
            (out, stats)
        } else {
            let (out, stats, mut state) = backend.run_retained(&self.prog, &q);
            self.prog.refresh_plan_cache(&out, state.plan_cache_mut());
            self.state = Some(state);
            (out, stats)
        };
        self.out = Some(out);
        Some(SlotAdvance { strategy: planned.strategy, stats })
    }

    fn save_state(
        &self,
        path: &Path,
        frags: &[Arc<Fragment<V, E>>],
    ) -> Result<bool, SnapshotError> {
        let (Some(q), Some(state)) = (self.query.as_ref(), self.state.as_ref()) else {
            return Ok(false);
        };
        save_program_state(path, q, &state.export(frags))?;
        Ok(true)
    }

    fn load_state(&mut self, path: &Path, backend: &B) -> Result<bool, SessionError> {
        if !path.exists() {
            return Ok(false);
        }
        let (q, portable) = load_program_state::<P::Query, P::State, _>(path)?;
        let (mut state, remaps) = portable
            .attach(backend.fragments())
            .map_err(|e| SessionError::Restore { detail: e.to_string() })?;
        let out = if remaps.iter().all(|r| r.is_identity()) {
            self.prog.assemble_ref(&q, backend.fragments(), state.states())
        } else {
            // State attached to a re-derived layout: one settle round
            // (empty seeds/invalid) migrates values through `warm_eval`.
            let empty: Vec<Vec<LocalId>> = remaps.iter().map(|_| Vec::new()).collect();
            let (out, _stats) =
                backend.run_incremental(&self.prog, &q, &remaps, &empty, &empty, &mut state);
            out
        };
        self.prog.refresh_plan_cache(&out, state.plan_cache_mut());
        self.query = Some(q);
        self.state = Some(state);
        self.out = Some(out);
        Ok(true)
    }
}

/// Backend-agnostic registration: a builder stores one factory per
/// `.program(...)` call and, at `open()`/`open_sim()`, converts it into
/// a slot for the concrete backend. Two monomorphic constructors stand
/// in for the generic method a boxed trait cannot have.
pub(crate) trait SlotFactory<V, E> {
    fn engine_slot(self: Box<Self>) -> Box<dyn AnySlot<V, E, Engine<V, E>>>;
    fn sim_slot(self: Box<Self>) -> Box<dyn AnySlot<V, E, SimEngine<V, E>>>;
}

pub(crate) struct ProgramFactory<V, E, P> {
    prog: P,
    _marker: PhantomData<fn() -> (V, E)>,
}

impl<V, E, P> ProgramFactory<V, E, P> {
    pub(crate) fn new(prog: P) -> Self {
        ProgramFactory { prog, _marker: PhantomData }
    }
}

impl<V, E, P> SlotFactory<V, E> for ProgramFactory<V, E, P>
where
    V: Clone + Send + Sync + 'static,
    E: Clone + PartialOrd + Send + Sync + 'static,
    P: WarmStart<V, E> + 'static,
    P::Query: Clone + PartialEq + Codec + 'static,
    P::State: Clone + Codec,
    P::Out: Clone + 'static,
{
    fn engine_slot(self: Box<Self>) -> Box<dyn AnySlot<V, E, Engine<V, E>>> {
        Box::new(Slot::new(self.prog))
    }

    fn sim_slot(self: Box<Self>) -> Box<dyn AnySlot<V, E, SimEngine<V, E>>> {
        Box::new(Slot::new(self.prog))
    }
}
