//! Type-erased program slots: one registered PIE program with its
//! retained query, [`RunState`], cached output, bounded answer cache,
//! and epoch-publication cell, behind an object-safe trait so a
//! [`crate::Session`] can hold SSSP, CC, and future programs with
//! heterogeneous `Query`/`State`/`Out` types in one map.
//!
//! The erased surface is exactly the per-program half of the session
//! lifecycle: *plan* (pre-apply invalidation planning), *advance* (warm
//! or cold evaluation after the shared fragment apply), *publish* /
//! *serve_pending* (the concurrent-serving hooks), and the durable
//! *save*/*load* hooks. The typed half — `query` — goes through a
//! downcast in `Session::query`, which re-unites the caller's program
//! type with the slot's.
//!
//! ## Serving discipline (ISSUE 6)
//!
//! A slot retains **one** warm fixpoint (query + [`RunState`]) that
//! deltas advance, and serves every *other* query value through a small
//! bounded answer cache (MRU at the front) filled by cold runs that do
//! **not** disturb the retained state. The first-ever query becomes the
//! retained one; switching it later is explicit
//! ([`crate::Session::retain_query`]). Applying a delta clears the
//! answer cache — those outputs described the pre-apply graph.

use crate::backend::Backend;
use crate::durable::StateCrcs;
use crate::reader::{Fix, Published};
use crate::SessionError;
use aap_core::engine::RunState;
use aap_core::pie::WarmStart;
use aap_core::publish::EpochCell;
use aap_core::{Engine, PortableFragState, RunStats, WarmStrategy};
use aap_delta::{plan_incremental_traced, remap_invalid, Applied, GraphDelta};
use aap_graph::mutate::StateRemap;
use aap_graph::{Fragment, LocalId};
use aap_sim::SimEngine;
use aap_snapshot::wire::{crc32, Writer};
use aap_snapshot::{
    diff_program_state_to_bytes, frag_state_crc, load_program_state_parts, program_state_to_bytes,
    resolve_state_chain, Codec,
};
use aap_trace::Tracer;
use std::any::Any;
use std::marker::PhantomData;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

/// One program's durable form, encoded for the next checkpoint epoch by
/// [`AnySlot::encode_state`] on the writer thread (cheap relative to
/// fragment serialization, and it keeps slots off background threads).
pub(crate) struct EncodedState {
    /// The file to write at the new epoch — `None` when nothing changed
    /// since the parent epoch (the chain resolves the shards from older
    /// files, so no file is written at all).
    pub(crate) file: Option<Vec<u8>>,
    /// Fingerprints to diff the *next* checkpoint against.
    pub(crate) crcs: StateCrcs,
}

/// The pre-apply half of one program's delta handling: the strategy its
/// `delta_strategy` chose and, for `warm-increase`, the invalidated
/// sets in **old** local ids (remapped after the apply).
pub(crate) struct Planned {
    pub(crate) strategy: WarmStrategy,
    pub(crate) invalid_old: Vec<Vec<LocalId>>,
}

/// What one program's advance did, for the session's apply report.
pub(crate) struct SlotAdvance {
    pub(crate) strategy: WarmStrategy,
    pub(crate) stats: RunStats,
}

/// The object-safe slot surface (see module docs). `Any` is a supertrait
/// so `Session::query` can downcast back to the concrete [`Slot`].
pub(crate) trait AnySlot<V, E, B>: Any {
    fn as_any(&self) -> &dyn Any;
    fn as_any_mut(&mut self) -> &mut dyn Any;
    /// Pre-apply planning on the old fragments; `None` when no state is
    /// retained yet (nothing to advance). An enabled `tracer` records
    /// the chosen strategy and the invalidation planning span.
    fn plan(
        &mut self,
        frags: &[&Fragment<V, E>],
        delta: &GraphDelta<V, E>,
        tracer: &Tracer,
    ) -> Option<Planned>;
    /// Post-apply advance: warm (`run_incremental` through the applied
    /// remaps/seeds) or cold (`run_retained`), refreshing the cached
    /// output and the state's plan cache. Drops the answer cache — its
    /// entries described the pre-apply graph.
    fn advance(
        &mut self,
        backend: &B,
        applied: &Applied,
        planned: Option<Planned>,
    ) -> Option<SlotAdvance>;
    /// Settle retained state across an elastic migration: one warm run
    /// through the migration remaps with its seeds (no invalidation —
    /// the logical graph is unchanged), refreshing the cached output.
    /// Moved vertices are seeded at every surviving copy, so retained
    /// values re-announce and the new owner converges without a cold
    /// start. `false` when no state is retained (nothing to settle).
    fn migrate(&mut self, backend: &B, remaps: &[StateRemap], seeds: &[Vec<LocalId>]) -> bool;
    /// Publish the slot's current serving surface (retained query +
    /// output, answer cache) to its epoch cell at session `version`.
    fn publish(&self, version: u64);
    /// Drain the reader-admitted queue, answering every distinct queued
    /// value from the retained fixpoint, the answer cache, or one cold
    /// run each. Returns how many answers were **newly computed**.
    fn serve_pending(&mut self, backend: &B) -> usize;
    /// The shared publication cell + admission queue, for reader
    /// handles ([`crate::Session::reader`]).
    fn reader_parts(&self) -> (Arc<EpochCell<Published>>, Arc<dyn Any + Send + Sync>);
    /// Encode query + exported state for the next checkpoint epoch;
    /// `None` when the slot has no state yet. With `prev` fingerprints
    /// the encoding is differential — only changed shards — and may
    /// skip the file entirely (`file: None`); without them (fresh open,
    /// post-restore, full baseline) it is a full `STAT` file.
    fn encode_state(
        &self,
        frags: &[Arc<Fragment<V, E>>],
        prev: Option<&StateCrcs>,
    ) -> Option<EncodedState>;
    /// Load query + state from an epoch chain's files (**newest
    /// first**), resolve the newest version of each shard, attach
    /// against the backend's fragments, and settle non-identity remaps
    /// through one warm round. `Ok(false)` when `paths` is empty.
    fn load_state_chain(&mut self, paths: &[PathBuf], backend: &B) -> Result<bool, SessionError>;
}

/// The concrete slot for program `P`.
pub(crate) struct Slot<V, E, P>
where
    P: WarmStart<V, E>,
{
    prog: P,
    query: Option<P::Query>,
    state: Option<RunState<P::State>>,
    out: Option<Arc<P::Out>>,
    /// Bounded per-program answer cache for non-retained query values,
    /// most-recently-used first.
    answers: Vec<(P::Query, Arc<P::Out>)>,
    answer_cap: usize,
    /// Epoch-published serving surface (shared with every reader).
    cell: Arc<EpochCell<Published>>,
    /// Reader-admitted query values awaiting `serve_pending`.
    pending: Arc<Mutex<Vec<P::Query>>>,
    _marker: PhantomData<fn() -> (V, E)>,
}

impl<V, E, P> Slot<V, E, P>
where
    P: WarmStart<V, E>,
    P::Query: Clone + PartialEq + Send + Sync + 'static,
    P::Out: Send + Sync + 'static,
{
    pub(crate) fn new(prog: P, answer_cap: usize) -> Self {
        Slot {
            prog,
            query: None,
            state: None,
            out: None,
            answers: Vec::new(),
            answer_cap,
            cell: Arc::new(EpochCell::new()),
            pending: Arc::new(Mutex::new(Vec::new())),
            _marker: PhantomData,
        }
    }

    /// Serve a query without evicting the retained fixpoint: retained
    /// hit, answer-cache hit (moved to front), or one cold run. The
    /// first-ever query becomes the retained one (there is nothing to
    /// protect yet); later distinct values land in the bounded answer
    /// cache and leave the retained state untouched. The `bool` is true
    /// when the answer was newly computed (callers republish then).
    pub(crate) fn serve<B: Backend<V, E>>(
        &mut self,
        backend: &B,
        q: &P::Query,
    ) -> (Arc<P::Out>, bool) {
        if let Some(out) = self.lookup(q) {
            return (out, false);
        }
        if self.query.is_none() {
            return (self.retain(backend, q), true);
        }
        let (out, _stats, _state) = backend.run_retained(&self.prog, q);
        let out = Arc::new(out);
        self.cache_answer(q.clone(), Arc::clone(&out));
        (out, true)
    }

    /// A cache-only probe: the retained output when `q` is retained,
    /// else the cached answer moved to the front.
    fn lookup(&mut self, q: &P::Query) -> Option<Arc<P::Out>> {
        if self.query.as_ref() == Some(q) {
            return self.out.clone();
        }
        let pos = self.answers.iter().position(|(aq, _)| aq == q)?;
        let hit = self.answers.remove(pos);
        let out = Arc::clone(&hit.1);
        self.answers.insert(0, hit);
        Some(out)
    }

    fn cache_answer(&mut self, q: P::Query, out: Arc<P::Out>) {
        self.answers.retain(|(aq, _)| *aq != q);
        self.answers.insert(0, (q, out));
        self.answers.truncate(self.answer_cap);
    }

    /// Make `q` the retained query via a cold retained run, replacing
    /// the slot's warm state (the old behaviour of re-querying, now
    /// explicit). The previous retained answer is demoted into the
    /// answer cache — it is still a valid answer for the current graph.
    pub(crate) fn retain<B: Backend<V, E>>(&mut self, backend: &B, q: &P::Query) -> Arc<P::Out> {
        if self.query.as_ref() == Some(q) {
            if let Some(out) = self.out.clone() {
                return out;
            }
        }
        let (out, _stats, mut state) = backend.run_retained(&self.prog, q);
        self.prog.refresh_plan_cache(&out, state.plan_cache_mut());
        let out = Arc::new(out);
        if let (Some(oq), Some(oo)) = (self.query.take(), self.out.take()) {
            self.cache_answer(oq, oo);
        }
        self.answers.retain(|(aq, _)| aq != q);
        self.query = Some(q.clone());
        self.state = Some(state);
        self.out = Some(Arc::clone(&out));
        out
    }

    /// Build the publishable snapshot of the serving surface — `Arc`
    /// bumps only, no data copies.
    fn fix(&self) -> Fix<P::Query, P::Out> {
        Fix { query: self.query.clone(), out: self.out.clone(), answers: self.answers.clone() }
    }

    pub(crate) fn publish_at(&self, version: u64) {
        self.cell.publish(Arc::new(Published { version, fix: Arc::new(self.fix()) }));
    }

    /// The retained state, if a query materialized one (test/diagnostic
    /// access through `Session::run_state`).
    pub(crate) fn state(&self) -> Option<&RunState<P::State>> {
        self.state.as_ref()
    }

    /// The retained query, if any.
    pub(crate) fn current_query(&self) -> Option<&P::Query> {
        self.query.as_ref()
    }

    /// The cached assembled output, if any (zero-copy serving path).
    pub(crate) fn output(&self) -> Option<&P::Out> {
        self.out.as_deref()
    }
}

impl<V, E, B, P> AnySlot<V, E, B> for Slot<V, E, P>
where
    V: Clone + Send + Sync + 'static,
    E: Clone + PartialOrd + Send + Sync + 'static,
    B: Backend<V, E>,
    P: WarmStart<V, E> + 'static,
    P::Query: Clone + PartialEq + Codec + Send + Sync + 'static,
    P::State: Clone + Codec,
    P::Out: Clone + Send + Sync + 'static,
{
    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }

    fn plan(
        &mut self,
        frags: &[&Fragment<V, E>],
        delta: &GraphDelta<V, E>,
        tracer: &Tracer,
    ) -> Option<Planned> {
        let q = self.query.clone()?;
        let state = self.state.as_mut()?;
        let (strategy, invalid_old) =
            plan_incremental_traced(frags, &self.prog, &q, delta, state, tracer);
        Some(Planned { strategy, invalid_old })
    }

    fn advance(
        &mut self,
        backend: &B,
        applied: &Applied,
        planned: Option<Planned>,
    ) -> Option<SlotAdvance> {
        let planned = planned?;
        let q = self.query.clone()?;
        let (out, stats) = if planned.strategy.is_warm() {
            let state = self.state.as_mut()?;
            let invalid = remap_invalid(planned.invalid_old, applied);
            let (out, stats) = backend.run_incremental(
                &self.prog,
                &q,
                &applied.remaps,
                &applied.seeds,
                &invalid,
                state,
            );
            self.prog.refresh_plan_cache(&out, state.plan_cache_mut());
            (out, stats)
        } else {
            let (out, stats, mut state) = backend.run_retained(&self.prog, &q);
            self.prog.refresh_plan_cache(&out, state.plan_cache_mut());
            self.state = Some(state);
            (out, stats)
        };
        self.out = Some(Arc::new(out));
        // Cached answers described the pre-apply graph.
        self.answers.clear();
        Some(SlotAdvance { strategy: planned.strategy, stats })
    }

    fn migrate(&mut self, backend: &B, remaps: &[StateRemap], seeds: &[Vec<LocalId>]) -> bool {
        let Some(q) = self.query.clone() else { return false };
        let Some(state) = self.state.as_mut() else { return false };
        let invalid: Vec<Vec<LocalId>> = remaps.iter().map(|_| Vec::new()).collect();
        let (out, _stats) = backend.run_incremental(&self.prog, &q, remaps, seeds, &invalid, state);
        self.prog.refresh_plan_cache(&out, state.plan_cache_mut());
        self.out = Some(Arc::new(out));
        // The answer cache survives: a migration does not change the
        // logical graph, so cached outputs (assembled in global ids,
        // partition-independent) still answer their queries.
        true
    }

    fn publish(&self, version: u64) {
        self.publish_at(version);
    }

    fn serve_pending(&mut self, backend: &B) -> usize {
        let drained: Vec<P::Query> = {
            let mut queued = self.pending.lock().unwrap_or_else(|e| e.into_inner());
            std::mem::take(&mut *queued)
        };
        let mut fresh = 0;
        for q in &drained {
            if self.serve(backend, q).1 {
                fresh += 1;
            }
        }
        fresh
    }

    fn reader_parts(&self) -> (Arc<EpochCell<Published>>, Arc<dyn Any + Send + Sync>) {
        (Arc::clone(&self.cell), self.pending.clone())
    }

    fn encode_state(
        &self,
        frags: &[Arc<Fragment<V, E>>],
        prev: Option<&StateCrcs>,
    ) -> Option<EncodedState> {
        let (q, state) = (self.query.as_ref()?, self.state.as_ref()?);
        let portable = state.export(frags);
        let mut qw = Writer::new();
        q.encode(&mut qw);
        let crcs = StateCrcs {
            query: crc32(qw.bytes()),
            shards: portable.entries().iter().map(frag_state_crc).collect(),
        };
        let total = crcs.shards.len();
        match prev {
            Some(p) if p.shards.len() == total => {
                let changed: Vec<(u16, &PortableFragState<P::State>)> = portable
                    .entries()
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| p.shards[*i] != crcs.shards[*i])
                    .map(|(i, e)| (i as u16, e))
                    .collect();
                let file = if changed.is_empty() && p.query == crcs.query {
                    None
                } else {
                    // A changed query with unchanged shards still needs
                    // a (shard-less) file: restore takes the retained
                    // query from the newest chain file.
                    Some(diff_program_state_to_bytes(q, total as u16, &changed))
                };
                Some(EncodedState { file, crcs })
            }
            _ => Some(EncodedState { file: Some(program_state_to_bytes(q, &portable)), crcs }),
        }
    }

    fn load_state_chain(&mut self, paths: &[PathBuf], backend: &B) -> Result<bool, SessionError> {
        if paths.is_empty() {
            return Ok(false);
        }
        let mut parts = Vec::with_capacity(paths.len());
        for path in paths {
            parts.push(load_program_state_parts::<P::Query, P::State, _>(path)?);
        }
        let q = parts[0].query.clone();
        let portable = resolve_state_chain(parts)?;
        let (mut state, remaps) = portable
            .attach(backend.fragments())
            .map_err(|e| SessionError::Restore { detail: e.to_string() })?;
        let out = if remaps.iter().all(|r| r.is_identity()) {
            self.prog.assemble_ref(&q, backend.fragments(), state.states())
        } else {
            // State attached to a re-derived layout: one settle round
            // (empty seeds/invalid) migrates values through `warm_eval`.
            let empty: Vec<Vec<LocalId>> = remaps.iter().map(|_| Vec::new()).collect();
            let (out, _stats) =
                backend.run_incremental(&self.prog, &q, &remaps, &empty, &empty, &mut state);
            out
        };
        self.prog.refresh_plan_cache(&out, state.plan_cache_mut());
        self.query = Some(q);
        self.state = Some(state);
        self.out = Some(Arc::new(out));
        Ok(true)
    }
}

/// Backend-agnostic registration: a builder stores one factory per
/// `.program(...)` call and, at `open()`/`open_sim()`, converts it into
/// a slot for the concrete backend. Two monomorphic constructors stand
/// in for the generic method a boxed trait cannot have.
pub(crate) trait SlotFactory<V, E> {
    fn engine_slot(self: Box<Self>, answer_cap: usize) -> Box<dyn AnySlot<V, E, Engine<V, E>>>;
    fn sim_slot(self: Box<Self>, answer_cap: usize) -> Box<dyn AnySlot<V, E, SimEngine<V, E>>>;
}

pub(crate) struct ProgramFactory<V, E, P> {
    prog: P,
    _marker: PhantomData<fn() -> (V, E)>,
}

impl<V, E, P> ProgramFactory<V, E, P> {
    pub(crate) fn new(prog: P) -> Self {
        ProgramFactory { prog, _marker: PhantomData }
    }
}

impl<V, E, P> SlotFactory<V, E> for ProgramFactory<V, E, P>
where
    V: Clone + Send + Sync + 'static,
    E: Clone + PartialOrd + Send + Sync + 'static,
    P: WarmStart<V, E> + 'static,
    P::Query: Clone + PartialEq + Codec + Send + Sync + 'static,
    P::State: Clone + Codec,
    P::Out: Clone + Send + Sync + 'static,
{
    fn engine_slot(self: Box<Self>, answer_cap: usize) -> Box<dyn AnySlot<V, E, Engine<V, E>>> {
        Box::new(Slot::new(self.prog, answer_cap))
    }

    fn sim_slot(self: Box<Self>, answer_cap: usize) -> Box<dyn AnySlot<V, E, SimEngine<V, E>>> {
        Box::new(Slot::new(self.prog, answer_cap))
    }
}
