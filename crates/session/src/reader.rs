//! The read side of concurrent serving: [`SessionReader`], a cheaply
//! cloneable handle over a session's epoch-published fixpoints.
//!
//! A [`crate::Session`] is a single-writer object (`query`, `apply`,
//! `checkpoint` all take `&mut self`). Every publication-worthy event —
//! a fresh fixpoint, a cache-filled answer, a delta advance — pushes the
//! slot's complete serving surface through an
//! [`EpochCell`](aap_core::publish::EpochCell), so any number of
//! `SessionReader` clones on other threads serve from the *last
//! published* fixpoint by `&self`, lock-free in the steady state, while
//! the writer streams `apply()` batches. Readers never observe a torn
//! mix of two publications: each read is one complete pre- or
//! post-apply [`Fix`].
//!
//! Readers cannot compute. A query value the writer has never served
//! reads as `None`; [`SessionReader::request`] enqueues it for
//! admission, and the writer answers the whole admission window with
//! [`crate::Session::serve_admitted`].

use crate::SessionError;
use aap_core::pie::WarmStart;
use aap_core::publish::{EpochCell, EpochReader};
use std::any::Any;
use std::cell::RefCell;
use std::marker::PhantomData;
use std::sync::{Arc, Mutex};

/// One program's published serving surface: the session-wide version it
/// was published at, plus the type-erased [`Fix`] (re-typed by the
/// reader's `P` turbofish, like `Session::query`).
pub(crate) struct Published {
    pub(crate) version: u64,
    pub(crate) fix: Arc<dyn Any + Send + Sync>,
}

/// The typed content behind one [`Published`]: the retained query and
/// its assembled output, plus the bounded answer cache — all `Arc`
/// clones of the writer's slot, so publishing is O(cache size) pointer
/// copies, never a data copy.
pub(crate) struct Fix<Q, O> {
    pub(crate) query: Option<Q>,
    pub(crate) out: Option<Arc<O>>,
    pub(crate) answers: Vec<(Q, Arc<O>)>,
}

/// One reader-side slot: the program's name, a reader-local epoch cache
/// over its publication cell, and the shared admission queue.
struct ReaderSlot {
    name: String,
    cell: RefCell<EpochReader<Published>>,
    pending: Arc<dyn Any + Send + Sync>,
}

/// A cheaply-cloneable read handle over a [`crate::Session`]'s published
/// fixpoints (see the module docs for the writer/reader split).
///
/// `Send` but deliberately **not** `Sync`: clone one per thread (the
/// clone is a few `Arc` bumps; its epoch cache starts cold and warms on
/// first read). All serving methods take `&self`; a steady-state
/// [`SessionReader::query`] hit is one atomic epoch load plus an
/// `Arc` clone of the cached output — it never locks against the writer
/// and never clones the output data.
///
/// ```
/// use aap_session::{edge_cut, Session};
/// use aap_algos::Sssp;
/// use aap_graph::generate;
///
/// let g = generate::small_world(120, 2, 0.1, 3);
/// let mut session =
///     Session::builder(g).partition(edge_cut(2)).program("sssp", Sssp).open()?;
/// session.query::<Sssp>("sssp", &0)?; // writer materializes + publishes
///
/// let reader = session.reader();
/// let worker = std::thread::spawn(move || {
///     // `&self` serving from another thread: an Arc of the published
///     // fixpoint, or None for a query the writer never served.
///     let dist = reader.query::<Sssp>("sssp", &0).unwrap().expect("published");
///     assert_eq!(dist[0], 0);
///     assert!(reader.query::<Sssp>("sssp", &99).unwrap().is_none());
///     reader.request::<Sssp>("sssp", &99).unwrap(); // enqueue for admission
/// });
/// worker.join().unwrap();
/// assert_eq!(session.serve_admitted()?, 1); // writer answers the window
/// let reader = session.reader();
/// assert!(reader.query::<Sssp>("sssp", &99)?.is_some());
/// # Ok::<(), aap_session::SessionError>(())
/// ```
pub struct SessionReader<V, E> {
    slots: Vec<ReaderSlot>,
    _marker: PhantomData<fn() -> (V, E)>,
}

impl<V, E> Clone for SessionReader<V, E> {
    fn clone(&self) -> Self {
        SessionReader {
            slots: self
                .slots
                .iter()
                .map(|s| ReaderSlot {
                    name: s.name.clone(),
                    cell: RefCell::new(s.cell.borrow().clone()),
                    pending: Arc::clone(&s.pending),
                })
                .collect(),
            _marker: PhantomData,
        }
    }
}

/// One slot's publication wiring as handed from the session to a
/// reader: program name, the epoch cell, and the admission queue.
pub(crate) type ReaderPart = (String, Arc<EpochCell<Published>>, Arc<dyn Any + Send + Sync>);

impl<V, E> SessionReader<V, E> {
    /// Assembled by [`crate::Session::reader`] from each slot's
    /// publication cell + admission queue.
    pub(crate) fn from_parts(parts: Vec<ReaderPart>) -> Self {
        SessionReader {
            slots: parts
                .into_iter()
                .map(|(name, cell, pending)| ReaderSlot {
                    name,
                    cell: RefCell::new(cell.reader()),
                    pending,
                })
                .collect(),
            _marker: PhantomData,
        }
    }

    fn index(&self, name: &str) -> Result<usize, SessionError> {
        self.slots.iter().position(|s| s.name == name).ok_or_else(|| SessionError::UnknownProgram {
            name: name.to_string(),
            registered: self.slots.iter().map(|s| s.name.clone()).collect(),
        })
    }

    /// Look the published fix up and serve `f(fix)`; distinguishes
    /// "nothing published yet" (`Ok(None)`) from a type mismatch.
    fn with_fix<P, R>(
        &self,
        name: &str,
        f: impl FnOnce(&Fix<P::Query, P::Out>) -> Option<R>,
    ) -> Result<Option<R>, SessionError>
    where
        P: WarmStart<V, E>,
        P::Query: Send + Sync + 'static,
        P::Out: Send + Sync + 'static,
    {
        let i = self.index(name)?;
        let mut cell = self.slots[i].cell.borrow_mut();
        match cell.with(|p| p.fix.downcast_ref::<Fix<P::Query, P::Out>>().map(f)) {
            None => Ok(None), // nothing published yet
            Some(None) => Err(SessionError::ProgramType { name: name.to_string() }),
            Some(Some(r)) => Ok(r),
        }
    }

    /// Serve query `q` against program `name` from the last published
    /// fixpoint: the retained output when `q` is the retained query, a
    /// cached answer when the writer has served `q` this window, and
    /// `None` otherwise (readers never compute —
    /// [`SessionReader::request`] admission for unseen values).
    ///
    /// The returned `Arc` stays valid forever; it simply stops being
    /// current once the writer publishes again.
    pub fn query<P>(&self, name: &str, q: &P::Query) -> Result<Option<Arc<P::Out>>, SessionError>
    where
        P: WarmStart<V, E>,
        P::Query: PartialEq + Send + Sync + 'static,
        P::Out: Send + Sync + 'static,
    {
        self.with_fix::<P, _>(name, |fix| {
            if fix.query.as_ref() == Some(q) {
                return fix.out.clone();
            }
            fix.answers.iter().find(|(aq, _)| aq == q).map(|(_, o)| Arc::clone(o))
        })
    }

    /// The last published *retained* output of program `name`, whatever
    /// its retained query currently is (`None` until the writer's first
    /// query materializes one).
    pub fn output<P>(&self, name: &str) -> Result<Option<Arc<P::Out>>, SessionError>
    where
        P: WarmStart<V, E>,
        P::Query: Send + Sync + 'static,
        P::Out: Send + Sync + 'static,
    {
        self.with_fix::<P, _>(name, |fix| fix.out.clone())
    }

    /// The session-wide version of program `name`'s last publication
    /// (`None` before the first): monotone per program, bumped by every
    /// publication event, so a reader can tell which writer state — e.g.
    /// which `apply` — an answer reflects.
    pub fn version(&self, name: &str) -> Result<Option<u64>, SessionError> {
        let i = self.index(name)?;
        let (_, p) = self.slots[i].cell.borrow_mut().load();
        Ok(p.map(|p| p.version))
    }

    /// Enqueue query value `q` for admission: the writer's next
    /// [`crate::Session::serve_admitted`] answers every distinct queued
    /// value from one shared serving pass and publishes the results.
    /// Returns `false` when `q` was already queued (the queue holds
    /// distinct values only).
    pub fn request<P>(&self, name: &str, q: &P::Query) -> Result<bool, SessionError>
    where
        P: WarmStart<V, E>,
        P::Query: Clone + PartialEq + Send + 'static,
    {
        let i = self.index(name)?;
        let queue = self.slots[i]
            .pending
            .downcast_ref::<Mutex<Vec<P::Query>>>()
            .ok_or_else(|| SessionError::ProgramType { name: name.to_string() })?;
        let mut queued = queue.lock().unwrap_or_else(|e| e.into_inner());
        if queued.iter().any(|p| p == q) {
            return Ok(false);
        }
        queued.push(q.clone());
        Ok(true)
    }
}
