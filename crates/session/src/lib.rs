//! # aap-session
//!
//! The unified **serving** facade of the GRAPE+ reproduction: one
//! stateful [`Session`] that owns the partitioned fragments, an engine
//! (threaded [`aap_core::Engine`] or simulated [`aap_sim::SimEngine`] —
//! one session type, generic over a [`Backend`]), *multiple
//! concurrently-retained programs* keyed by name, and optional
//! durability (epoch-stamped snapshots plus an append-only delta log).
//!
//! The paper's AAP model is a serving model — a long-lived process
//! answering queries over a graph while adapting its parallelization.
//! Before this facade, that lifecycle was hand-composed from
//! `Engine::run_retained`, `aap_delta::run_incremental`, and
//! `aap_snapshot::{save_engine, DeltaLog, replay}`, re-threading
//! `StateRemap`s and strategy outputs between crates at every step —
//! once *per program*. A session collapses it to four verbs:
//!
//! * [`Session::query`] — serve a query, retaining its fixpoint;
//! * [`Session::apply`] — apply a delta batch to the fragments **once**
//!   and warm-advance *every* retained program with its own
//!   `delta_strategy` (warm-decrease / warm-increase / cold), logging
//!   the delta when durable;
//! * [`Session::checkpoint`] — write the next snapshot epoch and reset
//!   the log (atomic manifest flip);
//! * [`Session::restore`] — load → attach → replay, per program.
//!
//! ```
//! use aap_session::{edge_cut, Session};
//! use aap_algos::{ConnectedComponents, Sssp};
//! use aap_core::Mode;
//! use aap_delta::DeltaBuilder;
//! use aap_graph::generate;
//!
//! let g = generate::small_world(200, 2, 0.1, 7);
//! let mut session = Session::builder(g)
//!     .partition(edge_cut(4))
//!     .mode(Mode::aap())
//!     .program("sssp", Sssp)
//!     .program("cc", ConnectedComponents)
//!     .open()?;
//!
//! let dist = session.query::<Sssp>("sssp", &0)?;
//! let comps = session.query::<ConnectedComponents>("cc", &())?;
//! assert_eq!(dist[0], 0);
//! assert_eq!(comps.len(), 200);
//!
//! // One apply advances BOTH retained programs from their fixpoints.
//! let mut b = DeltaBuilder::new();
//! b.add_edge(0, 100, 2);
//! let report = session.apply(&b.build())?;
//! assert_eq!(report.programs.len(), 2);
//! # Ok::<(), aap_session::SessionError>(())
//! ```
//!
//! Durability is a builder flag: `.durable(dir)?` snapshots the
//! partition at open, logs every applied delta, and
//! [`Session::restore`] + the same `.program(...)` registrations bring
//! a crashed process back to byte-identical state (see the
//! `SessionBuilder` docs for the full round trip).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod backend;
mod durable;
mod reader;
mod slot;

pub use backend::Backend;
pub use reader::SessionReader;

use crate::durable::{
    graph_path, log_path, read_manifest, state_file_programs, state_path, sweep_stale_epochs,
    write_manifest, Durable, DurableSpec,
};
use crate::slot::{AnySlot, Planned, ProgramFactory, Slot, SlotFactory};
use aap_core::engine::RunState;
use aap_core::pie::WarmStart;
use aap_core::{Engine, EngineOpts, Mode, WarmStrategy};
use aap_delta::apply::apply_to_fragments_par_traced;
use aap_delta::{DeltaSummary, GraphDelta};
use aap_graph::mutate::EditBuffers;
use aap_graph::partition::{
    build_fragments_n, build_fragments_vertex_cut_n, hash_partition, vertex_cut_partition,
};
use aap_graph::{Fragment, Graph};
use aap_sim::{SimEngine, SimOpts};
use aap_snapshot::{Codec, DeltaLog, SnapshotError};
use aap_trace::{cat, pid, Args, TraceSink, Tracer};
use std::path::{Path, PathBuf};
use std::sync::Arc;

// ---------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------

/// What went wrong with a session operation.
#[derive(Debug)]
pub enum SessionError {
    /// No program is registered under this name.
    UnknownProgram {
        /// The name that was asked for.
        name: String,
        /// Every name that *is* registered, in registration order —
        /// typo'd names get a pointer to what the session actually
        /// serves.
        registered: Vec<String>,
    },
    /// A typed accessor named a program registered with a different
    /// program type.
    ProgramType {
        /// The program name whose registration disagrees.
        name: String,
    },
    /// The engine's fragments are still shared by a previous borrow
    /// (drop outstanding fragment references before `apply`).
    SharedFragments,
    /// `checkpoint` on a session opened without `.durable(dir)`.
    NotDurable,
    /// A previous apply advanced the in-memory state but failed to
    /// append its delta to the log, so the on-disk history no longer
    /// replays to the live state. Further applies are refused until a
    /// successful [`Session::checkpoint`] re-baselines the directory
    /// (the fresh snapshot embodies the unlogged delta).
    LogWedged,
    /// `.durable(dir)` named a directory that already holds a session;
    /// use [`Session::restore`] to resume it.
    AlreadyInitialized(PathBuf),
    /// `restore` named a directory without a session manifest.
    MissingManifest(PathBuf),
    /// `restore` found persisted state for a program that is not
    /// registered on the builder. Proceeding would silently drop that
    /// program's durable warm state at the next `checkpoint` — register
    /// the program (same name, same type), or delete its
    /// `state.<name>.<epoch>.snap` file to drop it deliberately.
    UnregisteredProgramState {
        /// The program name the state file carries.
        name: String,
    },
    /// The manifest exists but does not parse.
    Manifest {
        /// The manifest path.
        path: PathBuf,
        /// What was wrong with its contents.
        detail: String,
    },
    /// A loaded program state could not be re-anchored against the
    /// loaded fragments.
    Restore {
        /// The attach failure.
        detail: String,
    },
    /// An underlying snapshot/log error (tagged with its path).
    Snapshot(SnapshotError),
    /// A plain filesystem error.
    Io(PathBuf, std::io::Error),
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::UnknownProgram { name, registered } => {
                write!(f, "no program registered as {name:?}")?;
                if registered.is_empty() {
                    write!(f, " (no programs are registered)")
                } else {
                    let names: Vec<String> = registered.iter().map(|n| format!("{n:?}")).collect();
                    write!(f, " (registered programs: {})", names.join(", "))
                }
            }
            SessionError::ProgramType { name } => {
                write!(f, "program {name:?} was registered with a different program type")
            }
            SessionError::SharedFragments => {
                write!(f, "fragments are shared; drop outstanding fragment borrows first")
            }
            SessionError::NotDurable => {
                write!(f, "session was opened without .durable(dir); nothing to checkpoint")
            }
            SessionError::LogWedged => write!(
                f,
                "delta log is missing an applied delta (a previous append failed); \
                 checkpoint() to re-baseline before applying further deltas"
            ),
            SessionError::AlreadyInitialized(dir) => write!(
                f,
                "{} already holds a session; use Session::restore to resume it",
                dir.display()
            ),
            SessionError::MissingManifest(dir) => {
                write!(f, "{} holds no session manifest", dir.display())
            }
            SessionError::UnregisteredProgramState { name } => write!(
                f,
                "directory holds retained state for unregistered program {name:?}; \
                 register it or delete its state file to drop it deliberately"
            ),
            SessionError::Manifest { path, detail } => {
                write!(f, "{}: bad manifest: {detail}", path.display())
            }
            SessionError::Restore { detail } => write!(f, "restore: {detail}"),
            SessionError::Snapshot(e) => write!(f, "{e}"),
            SessionError::Io(path, e) => write!(f, "{}: {e}", path.display()),
        }
    }
}

impl std::error::Error for SessionError {}

impl From<SnapshotError> for SessionError {
    fn from(e: SnapshotError) -> Self {
        SessionError::Snapshot(e)
    }
}

// ---------------------------------------------------------------------
// Partition specs
// ---------------------------------------------------------------------

/// How the session partitions its graph at open.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionSpec {
    /// Hash edge-cut into `m` fragments (owned vertices + edge-less
    /// mirrors) — the default.
    EdgeCut(usize),
    /// Hash vertex-cut into `m` fragments (replicated copies carrying
    /// edges).
    VertexCut(usize),
}

/// Hash edge-cut into `m` fragments (builder shorthand).
pub fn edge_cut(m: usize) -> PartitionSpec {
    PartitionSpec::EdgeCut(m)
}

/// Hash vertex-cut into `m` fragments (builder shorthand).
pub fn vertex_cut(m: usize) -> PartitionSpec {
    PartitionSpec::VertexCut(m)
}

impl PartitionSpec {
    fn build<V: Clone, E: Clone>(self, g: &Graph<V, E>) -> Vec<Fragment<V, E>> {
        match self {
            PartitionSpec::EdgeCut(m) => build_fragments_n(g, &hash_partition(g, m), m),
            PartitionSpec::VertexCut(m) => {
                build_fragments_vertex_cut_n(g, &vertex_cut_partition(g, m), m)
            }
        }
    }
}

// ---------------------------------------------------------------------
// Serving metrics
// ---------------------------------------------------------------------

/// Protocol-level serving counters, maintained by every session and
/// readable via [`Session::metrics`]. All counters are exact integers
/// independent of thread scheduling (they count facade events, not
/// engine work), so they are directly comparable across runs — the
/// `serving_sssp` bench gate diffs them against a checked-in baseline.
/// With tracing enabled they are additionally emitted as Chrome counter
/// tracks on the session process.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionMetrics {
    /// The publication version ([`Session::version`]): one bump per
    /// publication event (fresh query, admission window, apply batch,
    /// restore).
    pub publications: u64,
    /// [`Session::query`] calls that computed (and published) a new
    /// answer.
    pub fresh_queries: u64,
    /// [`Session::query`] calls served from the retained fixpoint or
    /// the bounded answer cache (no engine run, no publication).
    pub answer_cache_hits: u64,
    /// Answers newly computed across all [`Session::serve_admitted`]
    /// windows.
    pub admitted: u64,
    /// Delta batches applied (including batches replayed by restore).
    pub applies: u64,
    /// Durable checkpoints written.
    pub checkpoints: u64,
}

// ---------------------------------------------------------------------
// Apply report
// ---------------------------------------------------------------------

/// What one [`Session::apply`] did: the resolved batch shape and, per
/// retained program, the strategy that advanced it.
#[derive(Debug)]
pub struct ApplyReport {
    /// Batch shape with weight-change directions resolved against the
    /// pre-apply graph.
    pub summary: DeltaSummary,
    /// One entry per program that held retained state (programs never
    /// queried have nothing to advance and are absent).
    pub programs: Vec<ProgramApply>,
}

impl ApplyReport {
    /// The strategy that advanced `name`, if it advanced.
    pub fn strategy(&self, name: &str) -> Option<WarmStrategy> {
        self.programs.iter().find(|p| p.name == name).map(|p| p.strategy)
    }
}

/// One program's advance within an [`ApplyReport`].
#[derive(Debug)]
pub struct ProgramApply {
    /// The program's registered name.
    pub name: String,
    /// Which evaluation strategy ran
    /// (`warm-decrease | warm-increase | cold`).
    pub strategy: WarmStrategy,
    /// Updates shipped by the advancing run.
    pub updates: u64,
}

// ---------------------------------------------------------------------
// The builder
// ---------------------------------------------------------------------

enum Source<V, E> {
    Graph(Graph<V, E>),
    Restore,
}

/// Named, type-erased program slots in registration order.
type Slots<V, E, B> = Vec<(String, Box<dyn AnySlot<V, E, B>>)>;

/// Builder for a [`Session`]: graph (or restore directory), partition,
/// execution mode, registered programs, and optional durability. See
/// the crate docs for the fresh-open shape; the durable round trip:
///
/// ```
/// use aap_session::{edge_cut, Session};
/// use aap_algos::Sssp;
/// use aap_delta::DeltaBuilder;
/// use aap_graph::generate;
///
/// let dir = std::env::temp_dir().join(format!("aap_session_doc_{}", std::process::id()));
/// let g = generate::small_world(120, 2, 0.1, 3);
/// let mut session = Session::builder(g)
///     .partition(edge_cut(3))
///     .program("sssp", Sssp)
///     .durable(&dir)?
///     .open()?;
/// let before = session.query::<Sssp>("sssp", &0)?;
/// let mut b = DeltaBuilder::new();
/// b.add_edge(0, 60, 1);
/// session.apply(&b.build())?; // logged
/// let served = session.query::<Sssp>("sssp", &0)?;
/// drop(session); // "crash"
///
/// // load -> attach -> replay, per program, same registrations. The
/// // node/edge payload types are pinned by annotation — programs like
/// // `Sssp` are generic over them, so nothing else infers them:
/// let mut restored: Session<(), u32, _> =
///     Session::restore(&dir).program("sssp", Sssp).open()?;
/// assert_eq!(restored.query::<Sssp>("sssp", &0)?, served);
/// assert_ne!(before, served);
/// # std::fs::remove_dir_all(&dir).ok();
/// # Ok::<(), aap_session::SessionError>(())
/// ```
pub struct SessionBuilder<V, E> {
    source: Source<V, E>,
    partition: PartitionSpec,
    mode: Mode,
    threads: Option<usize>,
    max_rounds: Option<u32>,
    answer_cache: usize,
    durable_spec: Option<DurableSpec<V, E>>,
    programs: Vec<(String, Box<dyn SlotFactory<V, E>>)>,
    tracer: Tracer,
}

/// Default per-program answer-cache capacity (distinct non-retained
/// query values served warm per admission window).
const DEFAULT_ANSWER_CACHE: usize = 8;

fn valid_program_name(name: &str) -> bool {
    !name.is_empty() && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
}

impl<V, E> SessionBuilder<V, E>
where
    V: Clone + Send + Sync + 'static,
    E: Clone + PartialOrd + Send + Sync + 'static,
{
    /// Start a builder over a graph to be partitioned at open.
    /// [`Session::builder`] is the usual spelling.
    pub fn new(graph: Graph<V, E>) -> Self {
        SessionBuilder {
            source: Source::Graph(graph),
            partition: PartitionSpec::EdgeCut(EngineOpts::default().threads.max(2)),
            mode: Mode::aap(),
            threads: None,
            max_rounds: None,
            answer_cache: DEFAULT_ANSWER_CACHE,
            durable_spec: None,
            programs: Vec::new(),
            tracer: Tracer::default(),
        }
    }

    /// Start a builder that restores a durable session directory at
    /// open (load snapshot → attach per-program states → replay the
    /// delta log). Register the same programs the directory was
    /// checkpointed with; [`Session::restore`] is the usual spelling.
    pub fn restore_from(dir: impl AsRef<Path>) -> Self
    where
        V: Codec,
        E: Codec,
    {
        SessionBuilder {
            source: Source::Restore,
            partition: PartitionSpec::EdgeCut(EngineOpts::default().threads.max(2)),
            mode: Mode::aap(),
            threads: None,
            max_rounds: None,
            answer_cache: DEFAULT_ANSWER_CACHE,
            durable_spec: Some(DurableSpec::new(dir.as_ref().to_path_buf())),
            programs: Vec::new(),
            tracer: Tracer::default(),
        }
    }

    /// How to partition the graph (default: hash edge-cut over the
    /// default thread count). Ignored on restore — the persisted
    /// partition is loaded as saved.
    pub fn partition(mut self, spec: PartitionSpec) -> Self {
        self.partition = spec;
        self
    }

    /// Execution mode (δ policy) of the engine (default: AAP).
    pub fn mode(mut self, mode: Mode) -> Self {
        self.mode = mode;
        self
    }

    /// Physical worker threads for the threaded backend (default: the
    /// machine's parallelism). The simulator ignores it.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Abort any run exceeding this many rounds (safety valve; default
    /// unbounded on the threaded backend).
    pub fn max_rounds(mut self, max_rounds: u32) -> Self {
        self.max_rounds = Some(max_rounds);
        self
    }

    /// Attach a structured-tracing sink: the session emits apply /
    /// serve / checkpoint / restore spans and counter tracks, and the
    /// backend is handed the same tracer so engine rounds, delta
    /// strategies, and per-fragment repacks land in one merged trace
    /// (write it out with [`aap_trace::write_chrome_trace`]). Share one
    /// sink across sessions by passing `Arc` clones of it. Without this
    /// call tracing is disabled and costs one branch per call site.
    ///
    /// ```no_run
    /// # use aap_session::{edge_cut, Session};
    /// # use aap_algos::Sssp;
    /// # use aap_graph::generate;
    /// use std::sync::Arc;
    /// let rec = Arc::new(aap_trace::Recorder::with_capacity(1 << 16));
    /// let mut session = Session::builder(generate::small_world(100, 2, 0.1, 1))
    ///     .partition(edge_cut(2))
    ///     .program("sssp", Sssp)
    ///     .trace(Arc::clone(&rec))
    ///     .open()?;
    /// session.query::<Sssp>("sssp", &0)?;
    /// aap_trace::write_chrome_trace("run.trace.json", &rec.events())?;
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn trace(mut self, sink: impl TraceSink + 'static) -> Self {
        self.tracer = Tracer::new(sink);
        self
    }

    /// Per-program capacity of the bounded answer cache that serves
    /// non-retained query values (default 8; 0 disables caching, so
    /// every non-retained query value costs a cold run). See
    /// [`Session::query`] for the admission semantics.
    pub fn answer_cache(mut self, capacity: usize) -> Self {
        self.answer_cache = capacity;
        self
    }

    /// Register a program under `name`. Programs are retained
    /// independently: each keeps its own query, state, and strategy;
    /// one [`Session::apply`] advances them all.
    ///
    /// The `Codec` bounds make every registered program durable-capable
    /// (checkpointable); non-durable sessions simply never call them.
    ///
    /// # Panics
    /// Panics on a duplicate name or a name that is not
    /// `[A-Za-z0-9_-]+` (names become file-name components of durable
    /// sessions).
    pub fn program<P>(mut self, name: impl Into<String>, prog: P) -> Self
    where
        P: WarmStart<V, E> + 'static,
        P::Query: Clone + PartialEq + Codec + Send + Sync + 'static,
        P::State: Clone + Codec,
        P::Out: Clone + Send + Sync + 'static,
    {
        let name = name.into();
        assert!(
            valid_program_name(&name),
            "program name {name:?} must be non-empty [A-Za-z0-9_-]+"
        );
        assert!(
            !self.programs.iter().any(|(n, _)| *n == name),
            "program {name:?} registered twice"
        );
        self.programs.push((name, Box::new(ProgramFactory::new(prog))));
        self
    }

    /// Make the session durable in `dir` (created if missing): the
    /// partition is snapshotted at open, every applied delta is logged,
    /// and [`Session::checkpoint`] rotates snapshot epochs. Fails if
    /// `dir` already holds a session (resume those with
    /// [`Session::restore`]).
    pub fn durable(mut self, dir: impl AsRef<Path>) -> Result<Self, SessionError>
    where
        V: Codec,
        E: Codec,
    {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir).map_err(|e| SessionError::Io(dir.clone(), e))?;
        self.durable_spec = Some(DurableSpec::new(dir));
        Ok(self)
    }

    /// Open the session on the threaded GRAPE+ engine.
    pub fn open(self) -> Result<Session<V, E, Engine<V, E>>, SessionError> {
        let opts = EngineOpts {
            threads: self.threads.unwrap_or_else(|| EngineOpts::default().threads),
            mode: self.mode.clone(),
            max_rounds: self.max_rounds,
        };
        let cap = self.answer_cache;
        self.open_with(|frags| Engine::new(frags, opts), move |f| f.engine_slot(cap))
    }

    /// Open the session on the deterministic discrete-event simulator
    /// (virtual time, default latency/cost model) — same facade, same
    /// lifecycle, reproducible runs.
    pub fn open_sim(self) -> Result<Session<V, E, SimEngine<V, E>>, SessionError> {
        let opts = SimOpts { mode: self.mode.clone(), ..SimOpts::default() };
        let opts = SimOpts { max_rounds: self.max_rounds.or(opts.max_rounds), ..opts };
        let cap = self.answer_cache;
        self.open_with(|frags| SimEngine::new(frags, opts), move |f| f.sim_slot(cap))
    }

    fn open_with<B, MB, MS>(
        self,
        make_backend: MB,
        make_slot: MS,
    ) -> Result<Session<V, E, B>, SessionError>
    where
        B: Backend<V, E>,
        MB: FnOnce(Vec<Fragment<V, E>>) -> B,
        MS: Fn(Box<dyn SlotFactory<V, E>>) -> Box<dyn AnySlot<V, E, B>>,
    {
        let SessionBuilder { source, partition, durable_spec, programs, tracer, .. } = self;
        match source {
            Source::Graph(g) => {
                let frags = partition.build(&g);
                let mut backend = make_backend(frags);
                backend.set_tracer(tracer.clone());
                let slots: Slots<V, E, B> =
                    programs.into_iter().map(|(n, f)| (n, make_slot(f))).collect();
                let mut session = Session {
                    backend,
                    slots,
                    durable: None,
                    bufs: EditBuffers::default(),
                    version: 0,
                    tracer,
                    metrics: SessionMetrics::default(),
                };
                if let Some(spec) = durable_spec {
                    if read_manifest(&spec.dir)?.is_some() {
                        return Err(SessionError::AlreadyInitialized(spec.dir));
                    }
                    (spec.save_frags)(&graph_path(&spec.dir, 0), session.backend.fragments())?;
                    let log = DeltaLog::create(log_path(&spec.dir, 0))?;
                    write_manifest(&spec.dir, 0)?;
                    session.durable = Some(Durable { spec, epoch: 0, log, log_wedged: false });
                }
                Ok(session)
            }
            Source::Restore => {
                let spec = durable_spec.expect("restore builders always carry a durable spec");
                let traced = tracer.enabled();
                if traced {
                    tracer.begin(pid::SESSION, 0, cat::DURABLE, "restore", Args::new());
                }
                let epoch = read_manifest(&spec.dir)?
                    .ok_or_else(|| SessionError::MissingManifest(spec.dir.clone()))?;
                let frags = (spec.load_frags)(&graph_path(&spec.dir, epoch))?;
                let mut backend = make_backend(frags);
                backend.set_tracer(tracer.clone());
                let slots: Slots<V, E, B> =
                    programs.into_iter().map(|(n, f)| (n, make_slot(f))).collect();
                let mut session = Session {
                    backend,
                    slots,
                    durable: None,
                    bufs: EditBuffers::default(),
                    version: 0,
                    tracer,
                    metrics: SessionMetrics::default(),
                };
                // Every persisted state must have a registration: a
                // later checkpoint would silently drop an unregistered
                // program's durable warm state (its file is neither
                // carried forward nor cleaned up).
                for prog in state_file_programs(&spec.dir, epoch)? {
                    if !session.slots.iter().any(|(n, _)| *n == prog) {
                        return Err(SessionError::UnregisteredProgramState { name: prog });
                    }
                }
                {
                    let Session { slots, backend, version, .. } = &mut session;
                    for (name, slot) in slots.iter_mut() {
                        if slot.load_state(&state_path(&spec.dir, epoch, name), backend)? {
                            *version += 1;
                            slot.publish(*version);
                        }
                    }
                }
                // Replay the log: apply each delta once, advancing every
                // attached program — without re-logging. The read is the
                // tolerant `recover`: a torn, never-acknowledged tail
                // record from a crash mid-append is truncated away.
                let (deltas, _dropped_torn_tail) = (spec.read_log)(&log_path(&spec.dir, epoch))?;
                for delta in &deltas {
                    session.apply_inner(delta)?;
                }
                let log = DeltaLog::open_append(log_path(&spec.dir, epoch))?;
                // Reclaim generations stranded by a crash between a
                // manifest flip and its cleanup (or mid-checkpoint).
                sweep_stale_epochs(&spec.dir, epoch);
                session.durable = Some(Durable { spec, epoch, log, log_wedged: false });
                if traced {
                    session.tracer.end(
                        pid::SESSION,
                        0,
                        cat::DURABLE,
                        "restore",
                        Args::new().with("epoch", epoch).with("replayed", deltas.len()),
                    );
                    session.emit_counters();
                }
                Ok(session)
            }
        }
    }
}

// ---------------------------------------------------------------------
// The session
// ---------------------------------------------------------------------

/// A long-lived serving facade over one partitioned graph: multiple
/// retained programs, one delta lifecycle, optional durability. Built
/// by [`Session::builder`] / restored by [`Session::restore`]; see the
/// crate docs for the full tour.
pub struct Session<V, E, B: Backend<V, E>> {
    backend: B,
    slots: Slots<V, E, B>,
    durable: Option<Durable<V, E>>,
    bufs: EditBuffers,
    /// Monotone publication counter: bumped once per publication event
    /// (fresh query, admission window, apply batch, restore), stamped
    /// into every slot publication so readers can order what they see.
    version: u64,
    /// Structured-event tracer ([`SessionBuilder::trace`]); disabled —
    /// one branch per call site — unless a sink was attached.
    tracer: Tracer,
    /// Serving counters; `publications` is filled from `version` at
    /// read time ([`Session::metrics`]), the rest accumulate here.
    metrics: SessionMetrics,
}

impl<V, E> Session<V, E, Engine<V, E>>
where
    V: Clone + Send + Sync + 'static,
    E: Clone + PartialOrd + Send + Sync + 'static,
{
    /// Start building a session over `graph` (see [`SessionBuilder`]).
    pub fn builder(graph: Graph<V, E>) -> SessionBuilder<V, E> {
        SessionBuilder::new(graph)
    }

    /// Start building a session that resumes the durable directory
    /// `dir`: open loads the manifest's snapshot epoch, re-attaches
    /// each registered program's persisted state, and replays the delta
    /// log — landing byte-identical to the process that wrote it.
    pub fn restore(dir: impl AsRef<Path>) -> SessionBuilder<V, E>
    where
        V: Codec,
        E: Codec,
    {
        SessionBuilder::restore_from(dir)
    }
}

impl<V, E, B> Session<V, E, B>
where
    V: Clone + Send + Sync + 'static,
    E: Clone + PartialOrd + Send + Sync + 'static,
    B: Backend<V, E>,
{
    /// The fragments the session computes over.
    pub fn fragments(&self) -> &[Arc<Fragment<V, E>>] {
        self.backend.fragments()
    }

    /// The underlying backend (read access — e.g. engine options).
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// Registered program names, in registration order.
    pub fn program_names(&self) -> impl Iterator<Item = &str> {
        self.slots.iter().map(|(n, _)| n.as_str())
    }

    /// True when the session snapshots and logs (`.durable(dir)`).
    pub fn is_durable(&self) -> bool {
        self.durable.is_some()
    }

    /// The current durable snapshot epoch, if durable.
    pub fn epoch(&self) -> Option<u64> {
        self.durable.as_ref().map(|d| d.epoch)
    }

    /// The session-wide publication version (0 until something is
    /// published; bumped by every publication event).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Protocol-level serving counters (see [`SessionMetrics`]):
    /// publication version, fresh vs cache-served queries, admitted
    /// answers, applies, checkpoints. Exact integers independent of
    /// thread scheduling; with tracing enabled the same values are
    /// emitted as counter tracks.
    pub fn metrics(&self) -> SessionMetrics {
        SessionMetrics { publications: self.version, ..self.metrics }
    }

    /// Emit every serving counter as a Chrome counter event on the
    /// session process — one sample per call, stepped tracks in the
    /// viewer. Callers guard with `tracer.enabled()`.
    fn emit_counters(&self) {
        let m = self.metrics();
        self.tracer.counter(pid::SESSION, 0, "publications", m.publications);
        self.tracer.counter(pid::SESSION, 0, "fresh_queries", m.fresh_queries);
        self.tracer.counter(pid::SESSION, 0, "answer_cache_hits", m.answer_cache_hits);
        self.tracer.counter(pid::SESSION, 0, "admitted", m.admitted);
    }

    fn slot_index(&self, name: &str) -> Result<usize, SessionError> {
        self.slots.iter().position(|(n, _)| n == name).ok_or_else(|| SessionError::UnknownProgram {
            name: name.to_string(),
            registered: self.slots.iter().map(|(n, _)| n.clone()).collect(),
        })
    }

    /// Look program `name` up and downcast its slot to the caller's
    /// program type — the shared head of every typed accessor.
    fn typed_slot<P>(&self, name: &str) -> Result<&Slot<V, E, P>, SessionError>
    where
        P: WarmStart<V, E> + 'static,
        P::Query: Clone + PartialEq + Send + Sync + 'static,
        P::Out: Clone + Send + Sync + 'static,
    {
        let idx = self.slot_index(name)?;
        self.slots[idx]
            .1
            .as_any()
            .downcast_ref::<Slot<V, E, P>>()
            .ok_or_else(|| SessionError::ProgramType { name: name.to_string() })
    }

    /// Serve a query against program `name`, which must have been
    /// registered with program type `P` (checked; mismatches are a
    /// [`SessionError::ProgramType`]).
    ///
    /// Serving is **non-evicting**: the program retains one warm
    /// fixpoint (its *retained query*, set by the first-ever query and
    /// switched only by [`Session::retain_query`]) that
    /// [`Session::apply`] keeps current across deltas, and every other
    /// query value is answered by a cold run that does *not* disturb
    /// that state, cached in a small bounded per-program answer cache
    /// (capacity via [`SessionBuilder::answer_cache`], MRU eviction).
    /// Repeats of the retained query or of a cached value never touch
    /// the engine; the returned value is a clone — use
    /// [`Session::output`] for a zero-copy borrow, or a
    /// [`Session::reader`] handle for `Arc`-cheap concurrent reads.
    ///
    /// Applying a delta clears the answer cache (its entries described
    /// the pre-apply graph) and warm-advances only the retained query.
    /// Every freshly computed answer is epoch-published for readers.
    ///
    /// On a durable session only the retained query is checkpointed:
    /// state files record it as of the last [`Session::checkpoint`],
    /// and a restore resumes it (the applied delta stream — what the
    /// log records — replays exactly either way; re-querying other
    /// values after restore is one cold run each).
    pub fn query<P>(&mut self, name: &str, q: &P::Query) -> Result<P::Out, SessionError>
    where
        P: WarmStart<V, E> + 'static,
        P::Query: Clone + PartialEq + Send + Sync + 'static,
        P::Out: Clone + Send + Sync + 'static,
    {
        // `query` mutates the slot while borrowing the backend, so it
        // needs the split-borrow form of `typed_slot` inline.
        let idx = self.slot_index(name)?;
        let out = {
            let Session { slots, backend, version, tracer, metrics, .. } = self;
            let slot = slots[idx]
                .1
                .as_any_mut()
                .downcast_mut::<Slot<V, E, P>>()
                .ok_or_else(|| SessionError::ProgramType { name: name.to_string() })?;
            let traced = tracer.enabled();
            if traced {
                tracer.begin(pid::SESSION, idx as u32, cat::SERVE, "query", Args::new());
            }
            let (out, fresh) = slot.serve(backend, q);
            if fresh {
                *version += 1;
                slot.publish_at(*version);
                metrics.fresh_queries += 1;
            } else {
                metrics.answer_cache_hits += 1;
            }
            if traced {
                tracer.end(
                    pid::SESSION,
                    idx as u32,
                    cat::SERVE,
                    "query",
                    Args::new().with("fresh", fresh).with("version", *version),
                );
            }
            out
        };
        if self.tracer.enabled() {
            self.emit_counters();
        }
        Ok((*out).clone())
    }

    /// Make `q` program `name`'s **retained** query — the one fixpoint
    /// [`Session::apply`] warm-advances — via a cold retained run that
    /// replaces the current warm state. The previous retained answer is
    /// demoted into the answer cache (it still describes the current
    /// graph). Use this deliberately when the serving focus moves;
    /// plain [`Session::query`] never evicts.
    pub fn retain_query<P>(&mut self, name: &str, q: &P::Query) -> Result<P::Out, SessionError>
    where
        P: WarmStart<V, E> + 'static,
        P::Query: Clone + PartialEq + Send + Sync + 'static,
        P::Out: Clone + Send + Sync + 'static,
    {
        let idx = self.slot_index(name)?;
        let Session { slots, backend, version, tracer, .. } = self;
        let slot = slots[idx]
            .1
            .as_any_mut()
            .downcast_mut::<Slot<V, E, P>>()
            .ok_or_else(|| SessionError::ProgramType { name: name.to_string() })?;
        let traced = tracer.enabled();
        if traced {
            tracer.begin(pid::SESSION, idx as u32, cat::SERVE, "retain_query", Args::new());
        }
        let out = slot.retain(backend, q);
        *version += 1;
        slot.publish_at(*version);
        if traced {
            tracer.end(
                pid::SESSION,
                idx as u32,
                cat::SERVE,
                "retain_query",
                Args::new().with("version", *version),
            );
        }
        Ok((*out).clone())
    }

    /// Answer every query value readers have
    /// [requested](SessionReader::request) since the last admission
    /// window, program by program: each distinct queued value is served
    /// from the retained fixpoint, the answer cache, or one cold run,
    /// and every program that computed something republishes. Returns
    /// the number of newly computed answers across all programs.
    pub fn serve_admitted(&mut self) -> Result<usize, SessionError> {
        let traced = self.tracer.enabled();
        if traced {
            self.tracer.begin(pid::SESSION, 0, cat::SERVE, "serve_admitted", Args::new());
        }
        let Session { slots, backend, version, .. } = self;
        let mut fresh = 0;
        for (_, slot) in slots.iter_mut() {
            let n = slot.serve_pending(backend);
            if n > 0 {
                *version += 1;
                slot.publish(*version);
                fresh += n;
            }
        }
        self.metrics.admitted += fresh as u64;
        if traced {
            self.tracer.end(
                pid::SESSION,
                0,
                cat::SERVE,
                "serve_admitted",
                Args::new().with("computed", fresh).with("version", self.version),
            );
            self.emit_counters();
        }
        Ok(fresh)
    }

    /// A cheaply-cloneable read handle over every program's published
    /// fixpoint: clone one per thread and serve
    /// [`SessionReader::query`] / [`SessionReader::output`] by `&self`
    /// while this session (the single writer) keeps applying deltas.
    /// Readers observe complete pre- or post-apply fixpoints only —
    /// never a torn mix — and values the writer has not served read as
    /// `None` until admitted ([`SessionReader::request`] +
    /// [`Session::serve_admitted`]).
    pub fn reader(&self) -> SessionReader<V, E> {
        SessionReader::from_parts(
            self.slots
                .iter()
                .map(|(n, s)| {
                    let (cell, pending) = s.reader_parts();
                    (n.clone(), cell, pending)
                })
                .collect(),
        )
    }

    /// Borrow program `name`'s cached assembled output for its retained
    /// query (`None` until a query materializes one) — the zero-copy
    /// serving path for read-heavy callers, where [`Session::query`]
    /// would clone the whole assembled vector per call.
    pub fn output<P>(&self, name: &str) -> Result<Option<&P::Out>, SessionError>
    where
        P: WarmStart<V, E> + 'static,
        P::Query: Clone + PartialEq + Send + Sync + 'static,
        P::Out: Clone + Send + Sync + 'static,
    {
        Ok(self.typed_slot::<P>(name)?.output())
    }

    /// The retained [`RunState`] of program `name` (`None` until a
    /// query materializes one) — diagnostic/test access; the
    /// equivalence suites compare it against hand-rolled compositions.
    pub fn run_state<P>(&self, name: &str) -> Result<Option<&RunState<P::State>>, SessionError>
    where
        P: WarmStart<V, E> + 'static,
        P::Query: Clone + PartialEq + Send + Sync + 'static,
        P::Out: Clone + Send + Sync + 'static,
    {
        Ok(self.typed_slot::<P>(name)?.state())
    }

    /// The query program `name` currently retains, if any.
    pub fn retained_query<P>(&self, name: &str) -> Result<Option<&P::Query>, SessionError>
    where
        P: WarmStart<V, E> + 'static,
        P::Query: Clone + PartialEq + Send + Sync + 'static,
        P::Out: Clone + Send + Sync + 'static,
    {
        Ok(self.typed_slot::<P>(name)?.current_query())
    }

    /// Apply a delta batch: plan every retained program's invalidation
    /// **pre-apply**, mutate the fragments in place **once**, then
    /// advance each program with its own strategy (warm-decrease /
    /// warm-increase through `warm_eval`, or a cold retained rerun).
    /// Durable sessions append the delta to the log after a successful
    /// apply. If that append fails, the in-memory state is already
    /// advanced but the on-disk history is not — the session latches
    /// [`SessionError::LogWedged`] and refuses further applies until a
    /// successful [`Session::checkpoint`] re-baselines the directory
    /// (queries keep serving the consistent in-memory state meanwhile).
    pub fn apply(&mut self, delta: &GraphDelta<V, E>) -> Result<ApplyReport, SessionError> {
        if self.durable.as_ref().is_some_and(|d| d.log_wedged) {
            return Err(SessionError::LogWedged);
        }
        let traced = self.tracer.enabled();
        if traced {
            self.tracer.begin(pid::SESSION, 0, cat::APPLY, "apply", Args::new());
        }
        let result = self.apply_inner(delta);
        if traced {
            let advanced = result.as_ref().map(|r| r.programs.len()).unwrap_or(0);
            self.tracer.end(
                pid::SESSION,
                0,
                cat::APPLY,
                "apply",
                Args::new()
                    .with("ok", result.is_ok())
                    .with("advanced", advanced)
                    .with("version", self.version),
            );
            self.emit_counters();
        }
        let report = result?;
        if let Some(d) = &mut self.durable {
            if let Err(e) = (d.spec.write_delta)(&mut d.log, delta) {
                d.log_wedged = true;
                return Err(SessionError::Snapshot(e));
            }
        }
        Ok(report)
    }

    fn apply_inner(&mut self, delta: &GraphDelta<V, E>) -> Result<ApplyReport, SessionError> {
        // 1. Pre-apply planning on the old fragments + old states.
        let planned: Vec<Option<Planned>> = {
            let view: Vec<&Fragment<V, E>> =
                self.backend.fragments().iter().map(|a| &**a).collect();
            let tracer = &self.tracer;
            self.slots.iter_mut().map(|(_, s)| s.plan(&view, delta, tracer)).collect()
        };
        // 2. One in-place fragment mutation, shared by all programs —
        // the touched-fragment repacks run on the backend's worker
        // budget (byte-identical to serial; see `aap_graph::mutate`).
        let threads = self.backend.apply_threads();
        let applied = {
            let mut frags = self.backend.fragments_mut().ok_or(SessionError::SharedFragments)?;
            apply_to_fragments_par_traced(&mut frags, delta, &mut self.bufs, threads, &self.tracer)
        };
        self.metrics.applies += 1;
        // 3. Advance every program that holds retained state, then
        // publish every advanced fixpoint under one version so readers
        // flip from the pre-apply epoch to the post-apply one whole.
        let mut programs = Vec::new();
        let mut advanced = vec![false; self.slots.len()];
        for (i, ((name, slot), plan)) in self.slots.iter_mut().zip(planned).enumerate() {
            if let Some(adv) = slot.advance(&self.backend, &applied, plan) {
                advanced[i] = true;
                programs.push(ProgramApply {
                    name: name.clone(),
                    strategy: adv.strategy,
                    updates: adv.stats.total_updates(),
                });
            }
        }
        if advanced.iter().any(|&a| a) {
            self.version += 1;
            for (i, (_, slot)) in self.slots.iter().enumerate() {
                if advanced[i] {
                    slot.publish(self.version);
                }
            }
        }
        Ok(ApplyReport { summary: applied.summary, programs })
    }

    /// Write the next durable epoch — fragment snapshot plus one state
    /// file per retained program — flip the manifest, and start a fresh
    /// delta log (the snapshot supersedes the old log's prefix). The
    /// old epoch's files are deleted best-effort after the flip.
    /// Returns the new epoch.
    pub fn checkpoint(&mut self) -> Result<u64, SessionError> {
        let Some(durable) = self.durable.as_mut() else {
            return Err(SessionError::NotDurable);
        };
        let traced = self.tracer.enabled();
        let dir = durable.spec.dir.clone();
        let next = durable.epoch + 1;
        if traced {
            self.tracer.begin(
                pid::SESSION,
                0,
                cat::DURABLE,
                "checkpoint",
                Args::new().with("epoch", next),
            );
        }
        (durable.spec.save_frags)(&graph_path(&dir, next), self.backend.fragments())?;
        for (name, slot) in &self.slots {
            slot.save_state(&state_path(&dir, next, name), self.backend.fragments())?;
        }
        let new_log = DeltaLog::create(log_path(&dir, next))?;
        write_manifest(&dir, next)?;
        durable.log = new_log;
        durable.epoch = next;
        // The fresh snapshot embodies every applied delta, logged or
        // not: a wedged log (failed append) is healed by re-baselining.
        durable.log_wedged = false;
        // Best-effort cleanup of every superseded generation — not just
        // the immediate predecessor, so generations stranded by a crash
        // in this window are reclaimed by the next checkpoint/restore.
        sweep_stale_epochs(&dir, next);
        self.metrics.checkpoints += 1;
        if traced {
            self.tracer.end(
                pid::SESSION,
                0,
                cat::DURABLE,
                "checkpoint",
                Args::new().with("epoch", next),
            );
        }
        Ok(next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aap_algos::{ConnectedComponents, Sssp};
    use aap_delta::DeltaBuilder;
    use aap_graph::generate;

    /// Satellite (ISSUE 6): a typo'd program name must say what IS
    /// registered, not just echo the typo back.
    #[test]
    fn unknown_program_error_names_the_registered_programs() {
        let g = generate::small_world(40, 2, 0.2, 1);
        let mut session = Session::builder(g)
            .partition(edge_cut(2))
            .program("sssp", Sssp)
            .program("cc", ConnectedComponents)
            .open()
            .unwrap();
        let err = session.query::<Sssp>("ssps", &0).expect_err("typo'd name must fail");
        assert!(matches!(
            &err,
            SessionError::UnknownProgram { name, registered }
                if name == "ssps" && registered == &["sssp".to_string(), "cc".to_string()]
        ));
        let msg = err.to_string();
        assert!(msg.contains("\"ssps\""), "{msg}");
        assert!(msg.contains("\"sssp\"") && msg.contains("\"cc\""), "{msg}");

        let g = generate::small_world(40, 2, 0.2, 1);
        let mut empty = Session::<(), u32, _>::builder(g).partition(edge_cut(2)).open().unwrap();
        let msg = empty.query::<Sssp>("sssp", &0).expect_err("nothing registered").to_string();
        assert!(msg.contains("no programs are registered"), "{msg}");
    }

    /// The admission semantics end to end: `query` never evicts the
    /// retained fixpoint, cache hits publish nothing, `retain_query`
    /// switches explicitly and demotes the old retained answer.
    #[test]
    fn query_is_non_evicting_and_retain_query_switches() {
        let g = generate::small_world(80, 2, 0.2, 9);
        let mut session =
            Session::builder(g).partition(edge_cut(2)).program("sssp", Sssp).open().unwrap();
        let from0 = session.query::<Sssp>("sssp", &0).unwrap();
        assert_eq!(session.retained_query::<Sssp>("sssp").unwrap(), Some(&0));
        let v1 = session.version();
        let from5 = session.query::<Sssp>("sssp", &5).unwrap();
        assert_ne!(from0, from5);
        assert_eq!(
            session.retained_query::<Sssp>("sssp").unwrap(),
            Some(&0),
            "a different query value must NOT evict the retained fixpoint"
        );
        assert!(session.version() > v1, "a freshly computed answer is published");
        let v2 = session.version();
        assert_eq!(session.query::<Sssp>("sssp", &5).unwrap(), from5);
        assert_eq!(session.version(), v2, "an answer-cache hit publishes nothing");

        assert_eq!(session.retain_query::<Sssp>("sssp", &5).unwrap(), from5);
        assert_eq!(session.retained_query::<Sssp>("sssp").unwrap(), Some(&5));
        let v3 = session.version();
        assert_eq!(session.query::<Sssp>("sssp", &0).unwrap(), from0);
        assert_eq!(session.version(), v3, "the demoted retained answer serves from cache");

        // The retained fixpoint (now 5) warm-advances; caches drop.
        let mut b = DeltaBuilder::new();
        b.add_edge(5, 40, 1);
        let report = session.apply(&b.build()).unwrap();
        assert_eq!(report.strategy("sssp"), Some(WarmStrategy::WarmDecrease));
        let v4 = session.version();
        session.query::<Sssp>("sssp", &0).unwrap();
        assert!(session.version() > v4, "post-apply, cached answers were dropped (cold re-run)");
    }

    /// Reader admission: requests queue distinct values; one
    /// `serve_admitted` answers the window and publishes.
    #[test]
    fn admitted_requests_are_served_in_one_window() {
        let g = generate::small_world(80, 2, 0.2, 9);
        let mut session =
            Session::builder(g).partition(edge_cut(2)).program("sssp", Sssp).open().unwrap();
        session.query::<Sssp>("sssp", &0).unwrap();
        let reader = session.reader();
        assert!(reader.query::<Sssp>("sssp", &3).unwrap().is_none());
        assert!(reader.request::<Sssp>("sssp", &3).unwrap());
        assert!(!reader.request::<Sssp>("sssp", &3).unwrap(), "distinct values only");
        assert!(reader.request::<Sssp>("sssp", &4).unwrap());
        assert!(reader.request::<Sssp>("sssp", &0).unwrap(), "already-served values queue too");
        assert_eq!(session.serve_admitted().unwrap(), 2, "0 was a cache hit, 3 and 4 computed");
        assert!(reader.query::<Sssp>("sssp", &3).unwrap().is_some());
        assert!(reader.query::<Sssp>("sssp", &4).unwrap().is_some());
        assert_eq!(
            session.retained_query::<Sssp>("sssp").unwrap(),
            Some(&0),
            "admission never moves the retained query"
        );
        assert_eq!(session.serve_admitted().unwrap(), 0, "window drained");
    }

    /// An always-failing log append, standing in for a full disk.
    fn failing_write(
        _log: &mut DeltaLog,
        _delta: &GraphDelta<(), u32>,
    ) -> Result<(), SnapshotError> {
        Err(DeltaLog::create("/nonexistent-aap-session-dir/never.dlog")
            .expect_err("creating a log in a nonexistent directory must fail"))
    }

    /// The LogWedged latch end to end: a failed append latches, further
    /// applies are refused (live state is ahead of the log, so logging
    /// more would let a restore silently diverge), checkpoint heals by
    /// re-baselining, and a post-heal restore lands exactly at the live
    /// state — including the delta whose append failed.
    #[test]
    fn failed_log_append_wedges_until_checkpoint() {
        let dir = std::env::temp_dir().join(format!("aap_session_wedge_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let g = generate::small_world(60, 2, 0.2, 5);
        let mut session = Session::builder(g)
            .partition(edge_cut(2))
            .program("sssp", Sssp)
            .durable(&dir)
            .unwrap()
            .open()
            .unwrap();
        session.query::<Sssp>("sssp", &0).unwrap();

        // Inject the failure and apply: the in-memory state advances,
        // the append fails, the latch sets.
        let healthy_write = session.durable.as_ref().unwrap().spec.write_delta;
        session.durable.as_mut().unwrap().spec.write_delta = failing_write;
        let mut b = DeltaBuilder::new();
        b.add_edge(0, 30, 1);
        let delta = b.build();
        let err = session.apply(&delta).expect_err("injected append failure");
        assert!(matches!(err, SessionError::Snapshot(_)), "{err}");
        let advanced = session.query::<Sssp>("sssp", &0).unwrap();

        // Wedged: further applies are refused even with a healthy log.
        session.durable.as_mut().unwrap().spec.write_delta = healthy_write;
        let mut b = DeltaBuilder::new();
        b.add_edge(0, 31, 1);
        let next = b.build();
        let err = session.apply(&next).expect_err("wedged session must refuse");
        assert!(matches!(err, SessionError::LogWedged), "{err}");
        assert_eq!(
            session.query::<Sssp>("sssp", &0).unwrap(),
            advanced,
            "a refused apply must not touch state"
        );

        // Checkpoint re-baselines (the fresh snapshot embodies the
        // unlogged delta) and clears the latch; applies resume.
        session.checkpoint().unwrap();
        session.apply(&next).unwrap();
        let served = session.query::<Sssp>("sssp", &0).unwrap();
        drop(session);

        // The healed directory restores to exactly the live state.
        let mut restored: Session<(), u32, _> =
            Session::restore(&dir).program("sssp", Sssp).open().unwrap();
        assert_eq!(restored.query::<Sssp>("sssp", &0).unwrap(), served);
        std::fs::remove_dir_all(&dir).ok();
    }
}
