//! # aap-session
//!
//! The unified **serving** facade of the GRAPE+ reproduction: one
//! stateful [`Session`] that owns the partitioned fragments, an engine
//! (threaded [`aap_core::Engine`] or simulated [`aap_sim::SimEngine`] —
//! one session type, generic over a [`Backend`]), *multiple
//! concurrently-retained programs* keyed by name, and optional
//! durability (epoch-stamped snapshots plus an append-only delta log).
//!
//! The paper's AAP model is a serving model — a long-lived process
//! answering queries over a graph while adapting its parallelization.
//! Before this facade, that lifecycle was hand-composed from
//! `Engine::run_retained`, `aap_delta::run_incremental`, and
//! `aap_snapshot::{save_engine, DeltaLog, replay}`, re-threading
//! `StateRemap`s and strategy outputs between crates at every step —
//! once *per program*. A session collapses it to four verbs:
//!
//! * [`Session::query`] — serve a query, retaining its fixpoint;
//! * [`Session::apply`] — apply a delta batch to the fragments **once**
//!   and warm-advance *every* retained program with its own
//!   `delta_strategy` (warm-decrease / warm-increase / cold), logging
//!   the delta when durable;
//! * [`Session::checkpoint`] — write the next snapshot epoch and reset
//!   the log (atomic manifest flip);
//! * [`Session::restore`] — load → attach → replay, per program.
//!
//! ```
//! use aap_session::{edge_cut, Session};
//! use aap_algos::{ConnectedComponents, Sssp};
//! use aap_core::Mode;
//! use aap_delta::DeltaBuilder;
//! use aap_graph::generate;
//!
//! let g = generate::small_world(200, 2, 0.1, 7);
//! let mut session = Session::builder(g)
//!     .partition(edge_cut(4))
//!     .mode(Mode::aap())
//!     .program("sssp", Sssp)
//!     .program("cc", ConnectedComponents)
//!     .open()?;
//!
//! let dist = session.query::<Sssp>("sssp", &0)?;
//! let comps = session.query::<ConnectedComponents>("cc", &())?;
//! assert_eq!(dist[0], 0);
//! assert_eq!(comps.len(), 200);
//!
//! // One apply advances BOTH retained programs from their fixpoints.
//! let mut b = DeltaBuilder::new();
//! b.add_edge(0, 100, 2);
//! let report = session.apply(&b.build())?;
//! assert_eq!(report.programs.len(), 2);
//! # Ok::<(), aap_session::SessionError>(())
//! ```
//!
//! Durability is a builder flag: `.durable(dir)?` snapshots the
//! partition at open, logs every applied delta, and
//! [`Session::restore`] + the same `.program(...)` registrations bring
//! a crashed process back to byte-identical state (see the
//! `SessionBuilder` docs for the full round trip).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod backend;
mod durable;
mod reader;
mod slot;

pub use aap_balance::{BalancePolicy, BalanceReport, MigrationPlan};
pub use backend::Backend;
pub use reader::SessionReader;

// Crash-injection surface (test suites only): the durable vtable's
// step signatures plus the real manifest flip, so a failing stand-in
// can wrap it ("commit, then die") at the exact point under test.
#[doc(hidden)]
pub use durable::{
    write_manifest as default_write_manifest, SaveDiffFragsFn, SaveFragsFn, WriteManifestFn,
};

use crate::durable::{
    graph_path, log_path, read_manifest, state_file_programs, state_path, sweep_stale_epochs,
    CheckpointCell, Durable, DurableSpec, PendingCut, StateCrcs,
};
use crate::slot::{AnySlot, Planned, ProgramFactory, Slot, SlotFactory};
use aap_balance::{execute_migration, plan_migration, BalanceMonitor};
use aap_core::engine::RunState;
use aap_core::pie::WarmStart;
use aap_core::{Engine, EngineOpts, Mode, WarmStrategy};
use aap_delta::apply::apply_to_fragments_par_traced;
use aap_delta::{DeltaSummary, GraphDelta};
use aap_graph::mutate::EditBuffers;
use aap_graph::partition::{
    build_fragments_n, build_fragments_vertex_cut_n, hash_partition, vertex_cut_partition,
};
use aap_graph::{Fragment, Graph};
use aap_sim::{SimEngine, SimOpts};
use aap_snapshot::{
    resolve_fragment_chain, write_file_atomic, Codec, DeltaLog, FragmentParts, SnapshotError,
};
use aap_trace::{cat, pid, Args, TraceSink, Tracer};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex};

// ---------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------

/// What went wrong with a session operation.
#[derive(Debug)]
pub enum SessionError {
    /// No program is registered under this name.
    UnknownProgram {
        /// The name that was asked for.
        name: String,
        /// Every name that *is* registered, in registration order —
        /// typo'd names get a pointer to what the session actually
        /// serves.
        registered: Vec<String>,
    },
    /// A typed accessor named a program registered with a different
    /// program type.
    ProgramType {
        /// The program name whose registration disagrees.
        name: String,
    },
    /// The engine's fragments are still shared by a previous borrow
    /// (drop outstanding fragment references before `apply`).
    SharedFragments,
    /// `checkpoint` on a session opened without `.durable(dir)`.
    NotDurable,
    /// `rebalance` on a session opened without
    /// [`SessionBuilder::balance`].
    NoBalancePolicy,
    /// A previous apply advanced the in-memory state but failed to
    /// append its delta to the log, so the on-disk history no longer
    /// replays to the live state. Further applies are refused until a
    /// successful [`Session::checkpoint`] re-baselines the directory
    /// (the fresh snapshot embodies the unlogged delta).
    LogWedged,
    /// `.durable(dir)` named a directory that already holds a session;
    /// use [`Session::restore`] to resume it.
    AlreadyInitialized(PathBuf),
    /// `restore` named a directory without a session manifest.
    MissingManifest(PathBuf),
    /// `restore` found persisted state for a program that is not
    /// registered on the builder. Proceeding would silently drop that
    /// program's durable warm state at the next `checkpoint` — register
    /// the program (same name, same type), or delete its
    /// `state.<name>.<epoch>.snap` file to drop it deliberately.
    UnregisteredProgramState {
        /// The program name the state file carries.
        name: String,
    },
    /// The manifest exists but does not parse.
    Manifest {
        /// The manifest path.
        path: PathBuf,
        /// What was wrong with its contents.
        detail: String,
    },
    /// A loaded program state could not be re-anchored against the
    /// loaded fragments.
    Restore {
        /// The attach failure.
        detail: String,
    },
    /// A background checkpoint failed; the session is re-wedged (like
    /// [`SessionError::LogWedged`]) until a successful checkpoint.
    Checkpoint {
        /// The failure, rendered (it crossed a thread boundary).
        detail: String,
    },
    /// An underlying snapshot/log error (tagged with its path).
    Snapshot(SnapshotError),
    /// A plain filesystem error.
    Io(PathBuf, std::io::Error),
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::UnknownProgram { name, registered } => {
                write!(f, "no program registered as {name:?}")?;
                if registered.is_empty() {
                    write!(f, " (no programs are registered)")
                } else {
                    let names: Vec<String> = registered.iter().map(|n| format!("{n:?}")).collect();
                    write!(f, " (registered programs: {})", names.join(", "))
                }
            }
            SessionError::ProgramType { name } => {
                write!(f, "program {name:?} was registered with a different program type")
            }
            SessionError::SharedFragments => {
                write!(f, "fragments are shared; drop outstanding fragment borrows first")
            }
            SessionError::NotDurable => {
                write!(f, "session was opened without .durable(dir); nothing to checkpoint")
            }
            SessionError::NoBalancePolicy => {
                write!(f, "session was opened without .balance(policy); nothing to rebalance")
            }
            SessionError::LogWedged => write!(
                f,
                "delta log is missing an applied delta (a previous append failed); \
                 checkpoint() to re-baseline before applying further deltas"
            ),
            SessionError::AlreadyInitialized(dir) => write!(
                f,
                "{} already holds a session; use Session::restore to resume it",
                dir.display()
            ),
            SessionError::MissingManifest(dir) => {
                write!(f, "{} holds no session manifest", dir.display())
            }
            SessionError::UnregisteredProgramState { name } => write!(
                f,
                "directory holds retained state for unregistered program {name:?}; \
                 register it or delete its state file to drop it deliberately"
            ),
            SessionError::Manifest { path, detail } => {
                write!(f, "{}: bad manifest: {detail}", path.display())
            }
            SessionError::Restore { detail } => write!(f, "restore: {detail}"),
            SessionError::Checkpoint { detail } => {
                write!(f, "background checkpoint failed: {detail}")
            }
            SessionError::Snapshot(e) => write!(f, "{e}"),
            SessionError::Io(path, e) => write!(f, "{}: {e}", path.display()),
        }
    }
}

impl std::error::Error for SessionError {}

impl From<SnapshotError> for SessionError {
    fn from(e: SnapshotError) -> Self {
        SessionError::Snapshot(e)
    }
}

// ---------------------------------------------------------------------
// Partition specs
// ---------------------------------------------------------------------

/// How the session partitions its graph at open.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionSpec {
    /// Hash edge-cut into `m` fragments (owned vertices + edge-less
    /// mirrors) — the default.
    EdgeCut(usize),
    /// Hash vertex-cut into `m` fragments (replicated copies carrying
    /// edges).
    VertexCut(usize),
}

/// Hash edge-cut into `m` fragments (builder shorthand).
pub fn edge_cut(m: usize) -> PartitionSpec {
    PartitionSpec::EdgeCut(m)
}

/// Hash vertex-cut into `m` fragments (builder shorthand).
pub fn vertex_cut(m: usize) -> PartitionSpec {
    PartitionSpec::VertexCut(m)
}

impl PartitionSpec {
    fn build<V: Clone, E: Clone>(self, g: &Graph<V, E>) -> Vec<Fragment<V, E>> {
        match self {
            PartitionSpec::EdgeCut(m) => build_fragments_n(g, &hash_partition(g, m), m),
            PartitionSpec::VertexCut(m) => {
                build_fragments_vertex_cut_n(g, &vertex_cut_partition(g, m), m)
            }
        }
    }
}

// ---------------------------------------------------------------------
// Durability policy
// ---------------------------------------------------------------------

/// How a durable session checkpoints: where the epoch-chained directory
/// lives, whether checkpoints are differential (only fragments and
/// program-state shards whose bytes changed since the parent epoch) or
/// full baselines, how long the epoch chain may grow before it is
/// compacted into a fresh baseline, whether checkpoints run on a
/// background thread behind a consistent cut, and how often one fires
/// automatically.
///
/// ```
/// use aap_session::DurabilityPolicy;
///
/// let dir = std::env::temp_dir().join(format!("aap_policy_doc_{}", std::process::id()));
/// let policy = DurabilityPolicy::new(&dir)
///     .checkpoint_every(64) // auto-checkpoint every 64 applies
///     .compact_after(8)     // rewrite the chain as a baseline at 8 epochs
///     .background(true);    // serialize + commit off the apply path
/// assert!(policy.is_differential());
/// ```
///
/// Attached with [`SessionBuilder::durability`]:
///
/// ```
/// use aap_session::{edge_cut, DurabilityPolicy, Session};
/// use aap_algos::Sssp;
/// use aap_delta::DeltaBuilder;
/// use aap_graph::generate;
///
/// let dir = std::env::temp_dir().join(format!("aap_policy_doc2_{}", std::process::id()));
/// let g = generate::small_world(120, 2, 0.1, 3);
/// let mut session = Session::builder(g)
///     .partition(edge_cut(3))
///     .program("sssp", Sssp)
///     .durability(DurabilityPolicy::new(&dir).compact_after(4))?
///     .open()?;
/// session.query::<Sssp>("sssp", &0)?;
/// let mut b = DeltaBuilder::new();
/// b.add_edge(0, 60, 1);
/// session.apply(&b.build())?;
/// let report = session.checkpoint()?; // differential: only dirty fragments
/// assert!(report.differential);
/// assert!(report.fragments_written >= 1);
/// # std::fs::remove_dir_all(&dir).ok();
/// # Ok::<(), aap_session::SessionError>(())
/// ```
#[derive(Debug, Clone)]
pub struct DurabilityPolicy {
    pub(crate) dir: PathBuf,
    pub(crate) checkpoint_every: Option<u64>,
    pub(crate) compact_after: Option<u64>,
    pub(crate) background: bool,
    pub(crate) differential: bool,
}

impl DurabilityPolicy {
    /// A differential, foreground, manually-checkpointed policy rooted
    /// at `dir` (created at `open` if missing).
    pub fn new(dir: impl AsRef<Path>) -> Self {
        DurabilityPolicy {
            dir: dir.as_ref().to_path_buf(),
            checkpoint_every: None,
            compact_after: None,
            background: false,
            differential: true,
        }
    }

    /// Checkpoint automatically after every `applies` successful
    /// applies (in addition to explicit [`Session::checkpoint`] calls).
    /// Default: manual checkpoints only.
    pub fn checkpoint_every(mut self, applies: u64) -> Self {
        self.checkpoint_every = Some(applies.max(1));
        self
    }

    /// When the epoch chain reaches `epochs` files, the next checkpoint
    /// rewrites it as one fresh full baseline instead of appending —
    /// bounding both restore's chain walk and directory size. Default:
    /// the chain grows until an explicit full checkpoint.
    pub fn compact_after(mut self, epochs: u64) -> Self {
        self.compact_after = Some(epochs.max(1));
        self
    }

    /// Run checkpoints on a background thread behind a consistent cut:
    /// the writer clones fragment `Arc`s and encodes program states at
    /// the cut, then keeps applying (copy-on-write detaches shared
    /// fragments) while serialization and the manifest flip proceed off
    /// the apply path. [`Session::checkpoint`] still works and runs
    /// foreground; `true` here routes *automatic* checkpoints (and
    /// [`Session::checkpoint_background`] calls) through the cut.
    pub fn background(mut self, yes: bool) -> Self {
        self.background = yes;
        self
    }

    /// Differential (default) writes only fragments and state shards
    /// whose bytes changed since the parent epoch, chaining epochs back
    /// to a baseline; `false` restores the original behaviour — every
    /// checkpoint is a full snapshot and the chain is always one epoch.
    pub fn differential(mut self, yes: bool) -> Self {
        self.differential = yes;
        self
    }

    /// Whether checkpoints are differential.
    pub fn is_differential(&self) -> bool {
        self.differential
    }
}

/// What one checkpoint wrote, returned by [`Session::checkpoint`] and
/// published by background cuts (via [`CheckpointHandle`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointReport {
    /// The committed epoch.
    pub epoch: u64,
    /// Fragments serialized into this epoch's graph file.
    pub fragments_written: u64,
    /// Fragments skipped as byte-identical to their chained version.
    pub fragments_skipped: u64,
    /// Total bytes written (graph file + state files).
    pub bytes: u64,
    /// Delta-log records superseded (and deleted) by this checkpoint.
    pub log_records_compacted: u64,
    /// True when this epoch is a differential link, false for a full
    /// baseline (fresh chain).
    pub differential: bool,
}

/// Completion handle of a background checkpoint
/// ([`Session::checkpoint_background`]): observe or await the cut's
/// commit from any thread. The *session-side* bookkeeping (epoch
/// advance, log rotation) lands when the writer next touches the
/// durable state — any `apply`, `checkpoint`, or
/// [`Session::finish_checkpoint`].
pub struct CheckpointHandle {
    cell: CheckpointCell,
}

impl CheckpointHandle {
    /// True once the background thread has committed or failed.
    pub fn is_done(&self) -> bool {
        self.cell.0.lock().unwrap_or_else(|e| e.into_inner()).is_some()
    }

    /// Block until the cut commits (its report) or fails
    /// ([`SessionError::Checkpoint`]). Does not perform the writer-side
    /// harvest; pair with [`Session::finish_checkpoint`] when the
    /// session itself should settle.
    pub fn wait(&self) -> Result<CheckpointReport, SessionError> {
        let (lock, cvar) = &*self.cell;
        let mut slot = lock.lock().unwrap_or_else(|e| e.into_inner());
        while slot.is_none() {
            slot = cvar.wait(slot).unwrap_or_else(|e| e.into_inner());
        }
        match slot.as_ref().expect("loop exits on Some") {
            Ok(report) => Ok(report.clone()),
            Err(detail) => Err(SessionError::Checkpoint { detail: detail.clone() }),
        }
    }
}

// ---------------------------------------------------------------------
// Serving metrics
// ---------------------------------------------------------------------

/// Protocol-level serving counters, maintained by every session and
/// readable via [`Session::metrics`]. All counters are exact integers
/// independent of thread scheduling (they count facade events, not
/// engine work), so they are directly comparable across runs — the
/// `serving_sssp` bench gate diffs them against a checked-in baseline.
/// With tracing enabled they are additionally emitted as Chrome counter
/// tracks on the session process.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionMetrics {
    /// The publication version ([`Session::version`]): one bump per
    /// publication event (fresh query, admission window, apply batch,
    /// restore).
    pub publications: u64,
    /// [`Session::query`] calls that computed (and published) a new
    /// answer.
    pub fresh_queries: u64,
    /// [`Session::query`] calls served from the retained fixpoint or
    /// the bounded answer cache (no engine run, no publication).
    pub answer_cache_hits: u64,
    /// Answers newly computed across all [`Session::serve_admitted`]
    /// windows.
    pub admitted: u64,
    /// Delta batches applied (including batches replayed by restore).
    pub applies: u64,
    /// Durable checkpoints written.
    pub checkpoints: u64,
    /// Fragments serialized across all checkpoints.
    pub checkpoint_fragments_written: u64,
    /// Fragments skipped (byte-identical to their chained version)
    /// across all differential checkpoints.
    pub checkpoint_fragments_skipped: u64,
    /// Bytes written across all checkpoints (graph + state files).
    pub checkpoint_bytes: u64,
    /// Delta-log records superseded (and deleted) by checkpoints.
    pub log_records_compacted: u64,
    /// Rebalance rounds that executed a non-empty migration plan.
    pub rebalances: u64,
    /// Ownership moves executed across all rebalance rounds.
    pub vertices_migrated: u64,
    /// Estimated payload bytes moved across all rebalance rounds.
    pub migration_bytes: u64,
}

// ---------------------------------------------------------------------
// Apply report
// ---------------------------------------------------------------------

/// What one [`Session::apply`] did: the resolved batch shape and, per
/// retained program, the strategy that advanced it.
#[derive(Debug)]
pub struct ApplyReport {
    /// Batch shape with weight-change directions resolved against the
    /// pre-apply graph.
    pub summary: DeltaSummary,
    /// One entry per program that held retained state (programs never
    /// queried have nothing to advance and are absent).
    pub programs: Vec<ProgramApply>,
}

impl ApplyReport {
    /// The strategy that advanced `name`, if it advanced.
    pub fn strategy(&self, name: &str) -> Option<WarmStrategy> {
        self.programs.iter().find(|p| p.name == name).map(|p| p.strategy)
    }
}

/// One program's advance within an [`ApplyReport`].
#[derive(Debug)]
pub struct ProgramApply {
    /// The program's registered name.
    pub name: String,
    /// Which evaluation strategy ran
    /// (`warm-decrease | warm-increase | cold`).
    pub strategy: WarmStrategy,
    /// Updates shipped by the advancing run.
    pub updates: u64,
}

/// What one [`Session::rebalance`] round did. An empty plan yields a
/// no-op report (`before == after`, zero moves) without touching any
/// fragment or bumping the version.
#[derive(Debug, Clone, PartialEq)]
pub struct RebalanceReport {
    /// Load imbalance (max/mean fragment load) when the round started.
    pub imbalance_before: f64,
    /// Load imbalance after the migration settled.
    pub imbalance_after: f64,
    /// Ownership moves the executed plan carried.
    pub vertices_migrated: u64,
    /// Estimated payload bytes moved (vertex values + adjacency).
    pub migration_bytes: u64,
    /// Fragments rebuilt in place by the migration.
    pub fragments_repacked: usize,
}

// ---------------------------------------------------------------------
// The builder
// ---------------------------------------------------------------------

enum Source<V, E> {
    Graph(Graph<V, E>),
    Restore,
}

/// Named, type-erased program slots in registration order.
type Slots<V, E, B> = Vec<(String, Box<dyn AnySlot<V, E, B>>)>;

/// Builder for a [`Session`]: graph (or restore directory), partition,
/// execution mode, registered programs, and optional durability. See
/// the crate docs for the fresh-open shape; the durable round trip:
///
/// ```
/// use aap_session::{edge_cut, Session};
/// use aap_algos::Sssp;
/// use aap_delta::DeltaBuilder;
/// use aap_graph::generate;
///
/// let dir = std::env::temp_dir().join(format!("aap_session_doc_{}", std::process::id()));
/// let g = generate::small_world(120, 2, 0.1, 3);
/// let mut session = Session::builder(g)
///     .partition(edge_cut(3))
///     .program("sssp", Sssp)
///     .durable(&dir)?
///     .open()?;
/// let before = session.query::<Sssp>("sssp", &0)?;
/// let mut b = DeltaBuilder::new();
/// b.add_edge(0, 60, 1);
/// session.apply(&b.build())?; // logged
/// let served = session.query::<Sssp>("sssp", &0)?;
/// drop(session); // "crash"
///
/// // load -> attach -> replay, per program, same registrations. The
/// // node/edge payload types are pinned by annotation — programs like
/// // `Sssp` are generic over them, so nothing else infers them:
/// let mut restored: Session<(), u32, _> =
///     Session::restore(&dir).program("sssp", Sssp).open()?;
/// assert_eq!(restored.query::<Sssp>("sssp", &0)?, served);
/// assert_ne!(before, served);
/// # std::fs::remove_dir_all(&dir).ok();
/// # Ok::<(), aap_session::SessionError>(())
/// ```
pub struct SessionBuilder<V, E> {
    source: Source<V, E>,
    partition: PartitionSpec,
    mode: Mode,
    threads: Option<usize>,
    max_rounds: Option<u32>,
    answer_cache: usize,
    durable: Option<(DurableSpec<V, E>, DurabilityPolicy)>,
    balance: Option<BalancePolicy>,
    programs: Vec<(String, Box<dyn SlotFactory<V, E>>)>,
    tracer: Tracer,
}

/// Default per-program answer-cache capacity (distinct non-retained
/// query values served warm per admission window).
const DEFAULT_ANSWER_CACHE: usize = 8;

fn valid_program_name(name: &str) -> bool {
    !name.is_empty() && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
}

impl<V, E> SessionBuilder<V, E>
where
    V: Clone + Send + Sync + 'static,
    E: Clone + PartialOrd + Send + Sync + 'static,
{
    /// Start a builder over a graph to be partitioned at open.
    /// [`Session::builder`] is the usual spelling.
    pub fn new(graph: Graph<V, E>) -> Self {
        SessionBuilder {
            source: Source::Graph(graph),
            partition: PartitionSpec::EdgeCut(EngineOpts::default().threads.max(2)),
            mode: Mode::aap(),
            threads: None,
            max_rounds: None,
            answer_cache: DEFAULT_ANSWER_CACHE,
            durable: None,
            balance: None,
            programs: Vec::new(),
            tracer: Tracer::default(),
        }
    }

    /// Start a builder that restores a durable session directory at
    /// open (resolve the manifest's epoch chain → attach per-program
    /// states → replay the delta log). Register the same programs the
    /// directory was checkpointed with; [`Session::restore`] is the
    /// usual spelling. The restored session keeps the conservative
    /// full-snapshot policy unless [`SessionBuilder::durability`]
    /// overrides it.
    pub fn restore_from(dir: impl AsRef<Path>) -> Self
    where
        V: Codec,
        E: Codec,
    {
        let dir = dir.as_ref().to_path_buf();
        SessionBuilder {
            source: Source::Restore,
            partition: PartitionSpec::EdgeCut(EngineOpts::default().threads.max(2)),
            mode: Mode::aap(),
            threads: None,
            max_rounds: None,
            answer_cache: DEFAULT_ANSWER_CACHE,
            durable: Some((
                DurableSpec::new(dir.clone()),
                DurabilityPolicy::new(dir).differential(false),
            )),
            balance: None,
            programs: Vec::new(),
            tracer: Tracer::default(),
        }
    }

    /// How to partition the graph (default: hash edge-cut over the
    /// default thread count). Ignored on restore — the persisted
    /// partition is loaded as saved.
    pub fn partition(mut self, spec: PartitionSpec) -> Self {
        self.partition = spec;
        self
    }

    /// Execution mode (δ policy) of the engine (default: AAP).
    pub fn mode(mut self, mode: Mode) -> Self {
        self.mode = mode;
        self
    }

    /// Physical worker threads for the threaded backend (default: the
    /// machine's parallelism). The simulator ignores it.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Abort any run exceeding this many rounds (safety valve; default
    /// unbounded on the threaded backend).
    pub fn max_rounds(mut self, max_rounds: u32) -> Self {
        self.max_rounds = Some(max_rounds);
        self
    }

    /// Attach a structured-tracing sink: the session emits apply /
    /// serve / checkpoint / restore spans and counter tracks, and the
    /// backend is handed the same tracer so engine rounds, delta
    /// strategies, and per-fragment repacks land in one merged trace
    /// (write it out with [`aap_trace::write_chrome_trace`]). Share one
    /// sink across sessions by passing `Arc` clones of it. Without this
    /// call tracing is disabled and costs one branch per call site.
    ///
    /// ```no_run
    /// # use aap_session::{edge_cut, Session};
    /// # use aap_algos::Sssp;
    /// # use aap_graph::generate;
    /// use std::sync::Arc;
    /// let rec = Arc::new(aap_trace::Recorder::with_capacity(1 << 16));
    /// let mut session = Session::builder(generate::small_world(100, 2, 0.1, 1))
    ///     .partition(edge_cut(2))
    ///     .program("sssp", Sssp)
    ///     .trace(Arc::clone(&rec))
    ///     .open()?;
    /// session.query::<Sssp>("sssp", &0)?;
    /// aap_trace::write_chrome_trace("run.trace.json", &rec.events())?;
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn trace(mut self, sink: impl TraceSink + 'static) -> Self {
        self.tracer = Tracer::new(sink);
        self
    }

    /// Configure elastic rebalancing (see [`BalancePolicy`]): the
    /// session tracks partition drift incrementally across applies
    /// (per-fragment owned/edge counts and delta-touch rates — no full
    /// scans), and [`Session::rebalance`] migrates boundary vertices
    /// from overloaded to underloaded fragments in place, carrying every
    /// retained program's warm state along. With
    /// `BalancePolicy::new().auto(true)` the session rebalances
    /// opportunistically after any apply that leaves the load ratio over
    /// `max_imbalance`.
    ///
    /// ```
    /// use aap_session::{edge_cut, BalancePolicy, Session};
    /// use aap_algos::Sssp;
    /// use aap_graph::generate;
    ///
    /// let g = generate::small_world(120, 2, 0.1, 3);
    /// let mut session = Session::builder(g)
    ///     .partition(edge_cut(3))
    ///     .program("sssp", Sssp)
    ///     .balance(BalancePolicy::new().max_imbalance(1.1).migration_budget(64))
    ///     .open()?;
    /// session.query::<Sssp>("sssp", &0)?;
    /// let report = session.rebalance()?;
    /// assert!(report.imbalance_after <= report.imbalance_before);
    /// # Ok::<(), aap_session::SessionError>(())
    /// ```
    pub fn balance(mut self, policy: BalancePolicy) -> Self {
        self.balance = Some(policy);
        self
    }

    /// Per-program capacity of the bounded answer cache that serves
    /// non-retained query values (default 8; 0 disables caching, so
    /// every non-retained query value costs a cold run). See
    /// [`Session::query`] for the admission semantics.
    pub fn answer_cache(mut self, capacity: usize) -> Self {
        self.answer_cache = capacity;
        self
    }

    /// Register a program under `name`. Programs are retained
    /// independently: each keeps its own query, state, and strategy;
    /// one [`Session::apply`] advances them all.
    ///
    /// The `Codec` bounds make every registered program durable-capable
    /// (checkpointable); non-durable sessions simply never call them.
    ///
    /// # Panics
    /// Panics on a duplicate name or a name that is not
    /// `[A-Za-z0-9_-]+` (names become file-name components of durable
    /// sessions).
    pub fn program<P>(mut self, name: impl Into<String>, prog: P) -> Self
    where
        P: WarmStart<V, E> + 'static,
        P::Query: Clone + PartialEq + Codec + Send + Sync + 'static,
        P::State: Clone + Codec,
        P::Out: Clone + Send + Sync + 'static,
    {
        let name = name.into();
        assert!(
            valid_program_name(&name),
            "program name {name:?} must be non-empty [A-Za-z0-9_-]+"
        );
        assert!(
            !self.programs.iter().any(|(n, _)| *n == name),
            "program {name:?} registered twice"
        );
        self.programs.push((name, Box::new(ProgramFactory::new(prog))));
        self
    }

    /// Make the session durable in `dir` (created if missing) with the
    /// original full-snapshot, foreground, manual-checkpoint behaviour:
    /// shorthand for
    /// `.durability(DurabilityPolicy::new(dir).differential(false))`.
    /// Prefer [`SessionBuilder::durability`], which defaults to
    /// differential checkpoints and exposes compaction, cadence, and
    /// background cuts; this shim stays so existing call sites compile
    /// (and behave) unchanged.
    pub fn durable(self, dir: impl AsRef<Path>) -> Result<Self, SessionError>
    where
        V: Codec,
        E: Codec,
    {
        self.durability(DurabilityPolicy::new(dir).differential(false))
    }

    /// Make the session durable under `policy` (its directory is
    /// created if missing): the partition is snapshotted at open, every
    /// applied delta is logged, and checkpoints follow the policy —
    /// differential epoch chains, compaction thresholds, automatic
    /// cadence, background cuts (see [`DurabilityPolicy`]). Fails at
    /// `open` if the directory already holds a session (resume those
    /// with [`Session::restore`]).
    pub fn durability(mut self, policy: DurabilityPolicy) -> Result<Self, SessionError>
    where
        V: Codec,
        E: Codec,
    {
        std::fs::create_dir_all(&policy.dir)
            .map_err(|e| SessionError::Io(policy.dir.clone(), e))?;
        self.durable = Some((DurableSpec::new(policy.dir.clone()), policy));
        Ok(self)
    }

    /// Open the session on the threaded GRAPE+ engine.
    pub fn open(self) -> Result<Session<V, E, Engine<V, E>>, SessionError> {
        let opts = EngineOpts {
            threads: self.threads.unwrap_or_else(|| EngineOpts::default().threads),
            mode: self.mode.clone(),
            max_rounds: self.max_rounds,
        };
        let cap = self.answer_cache;
        self.open_with(|frags| Engine::new(frags, opts), move |f| f.engine_slot(cap))
    }

    /// Open the session on the deterministic discrete-event simulator
    /// (virtual time, default latency/cost model) — same facade, same
    /// lifecycle, reproducible runs.
    pub fn open_sim(self) -> Result<Session<V, E, SimEngine<V, E>>, SessionError> {
        let opts = SimOpts { mode: self.mode.clone(), ..SimOpts::default() };
        let opts = SimOpts { max_rounds: self.max_rounds.or(opts.max_rounds), ..opts };
        let cap = self.answer_cache;
        // Default latency/cost/schedule knobs always validate.
        self.open_with(
            |frags| SimEngine::new(frags, opts).expect("default sim opts are valid"),
            move |f| f.sim_slot(cap),
        )
    }

    fn open_with<B, MB, MS>(
        self,
        make_backend: MB,
        make_slot: MS,
    ) -> Result<Session<V, E, B>, SessionError>
    where
        B: Backend<V, E>,
        MB: FnOnce(Vec<Fragment<V, E>>) -> B,
        MS: Fn(Box<dyn SlotFactory<V, E>>) -> Box<dyn AnySlot<V, E, B>>,
    {
        let SessionBuilder { source, partition, durable, balance, programs, tracer, .. } = self;
        match source {
            Source::Graph(g) => {
                let frags = partition.build(&g);
                let mut backend = make_backend(frags);
                backend.set_tracer(tracer.clone());
                let slots: Slots<V, E, B> =
                    programs.into_iter().map(|(n, f)| (n, make_slot(f))).collect();
                let mut session = Session {
                    backend,
                    slots,
                    durable: None,
                    balance: None,
                    bufs: EditBuffers::default(),
                    version: 0,
                    tracer,
                    metrics: SessionMetrics::default(),
                };
                let bal = balance
                    .map(|p| (p, BalanceMonitor::new(session.backend.fragments())));
                session.balance = bal;
                if let Some((spec, policy)) = durable {
                    if read_manifest(&spec.dir)?.is_some() {
                        return Err(SessionError::AlreadyInitialized(spec.dir));
                    }
                    (spec.save_frags)(&graph_path(&spec.dir, 0), session.backend.fragments())?;
                    let log = DeltaLog::create(log_path(&spec.dir, 0))?;
                    (spec.write_manifest)(&spec.dir, &[0])?;
                    let m = session.backend.fragments().len();
                    session.durable = Some(Durable {
                        spec,
                        policy,
                        chain: vec![0],
                        log,
                        log_wedged: false,
                        dirty: vec![false; m],
                        state_crcs: HashMap::new(),
                        log_records: 0,
                        applies_since_checkpoint: 0,
                        pending: None,
                    });
                }
                Ok(session)
            }
            Source::Restore => {
                let (spec, policy) = durable.expect("restore builders always carry a durable spec");
                let traced = tracer.enabled();
                if traced {
                    tracer.begin(pid::SESSION, 0, cat::DURABLE, "restore", Args::new());
                }
                let chain = read_manifest(&spec.dir)?
                    .ok_or_else(|| SessionError::MissingManifest(spec.dir.clone()))?;
                // Resolve the newest version of each fragment across the
                // epoch chain (a pre-differential directory is the
                // single-file chain `[N]`).
                let mut parts: Vec<FragmentParts<V, E>> = Vec::with_capacity(chain.len());
                for &e in &chain {
                    parts.push((spec.load_frag_parts)(&graph_path(&spec.dir, e))?);
                }
                let frags = resolve_fragment_chain(parts)?;
                let mut backend = make_backend(frags);
                backend.set_tracer(tracer.clone());
                let slots: Slots<V, E, B> =
                    programs.into_iter().map(|(n, f)| (n, make_slot(f))).collect();
                let mut session = Session {
                    backend,
                    slots,
                    durable: None,
                    balance: None,
                    bufs: EditBuffers::default(),
                    version: 0,
                    tracer,
                    metrics: SessionMetrics::default(),
                };
                // Every persisted state must have a registration: a
                // later checkpoint would silently drop an unregistered
                // program's durable warm state (its files are neither
                // carried forward nor cleaned up).
                for prog in state_file_programs(&spec.dir, &chain)? {
                    if !session.slots.iter().any(|(n, _)| *n == prog) {
                        return Err(SessionError::UnregisteredProgramState { name: prog });
                    }
                }
                {
                    let Session { slots, backend, version, .. } = &mut session;
                    for (name, slot) in slots.iter_mut() {
                        let paths: Vec<PathBuf> = chain
                            .iter()
                            .map(|&e| state_path(&spec.dir, e, name))
                            .filter(|p| p.exists())
                            .collect();
                        if slot.load_state_chain(&paths, backend)? {
                            *version += 1;
                            slot.publish(*version);
                        }
                    }
                }
                // Replay the log: apply each delta once, advancing every
                // attached program — without re-logging. The read is the
                // tolerant `recover`: a torn, never-acknowledged tail
                // record from a crash mid-append is truncated away. The
                // replayed deltas' changed fragments seed the dirty set:
                // they live only in the log, so the next (differential)
                // checkpoint must write them.
                let (deltas, _dropped_torn_tail) = (spec.read_log)(&log_path(&spec.dir, chain[0]))?;
                let mut dirty = vec![false; session.backend.fragments().len()];
                for delta in &deltas {
                    let (_, changed) = session.apply_inner(delta)?;
                    for (d, c) in dirty.iter_mut().zip(&changed) {
                        *d |= *c;
                    }
                }
                let log = DeltaLog::open_append(log_path(&spec.dir, chain[0]))?;
                // The drift monitor scans once *after* replay (during
                // it `session.balance` is `None`, so `apply_inner`
                // skips the per-batch refresh) — rebalances are never
                // logged, so the replayed layout is the starting point.
                let bal =
                    balance.map(|p| (p, BalanceMonitor::new(session.backend.fragments())));
                session.balance = bal;
                // Reclaim generations stranded by a crash between a
                // manifest flip and its cleanup (or mid-checkpoint).
                sweep_stale_epochs(&spec.dir, &chain);
                let epoch = chain[0];
                session.durable = Some(Durable {
                    spec,
                    policy,
                    chain,
                    log,
                    log_wedged: false,
                    dirty,
                    // No fingerprints from the previous process: the
                    // first state write per program is a full file.
                    state_crcs: HashMap::new(),
                    log_records: deltas.len() as u64,
                    applies_since_checkpoint: 0,
                    pending: None,
                });
                if traced {
                    session.tracer.end(
                        pid::SESSION,
                        0,
                        cat::DURABLE,
                        "restore",
                        Args::new().with("epoch", epoch).with("replayed", deltas.len()),
                    );
                    session.emit_counters();
                }
                Ok(session)
            }
        }
    }
}

// ---------------------------------------------------------------------
// The session
// ---------------------------------------------------------------------

/// A long-lived serving facade over one partitioned graph: multiple
/// retained programs, one delta lifecycle, optional durability. Built
/// by [`Session::builder`] / restored by [`Session::restore`]; see the
/// crate docs for the full tour.
pub struct Session<V, E, B: Backend<V, E>> {
    backend: B,
    slots: Slots<V, E, B>,
    durable: Option<Durable<V, E>>,
    bufs: EditBuffers,
    /// Monotone publication counter: bumped once per publication event
    /// (fresh query, admission window, apply batch, restore), stamped
    /// into every slot publication so readers can order what they see.
    version: u64,
    /// Structured-event tracer ([`SessionBuilder::trace`]); disabled —
    /// one branch per call site — unless a sink was attached.
    tracer: Tracer,
    /// Serving counters; `publications` is filled from `version` at
    /// read time ([`Session::metrics`]), the rest accumulate here.
    metrics: SessionMetrics,
    /// Elastic rebalancing ([`SessionBuilder::balance`]): the policy
    /// plus a drift monitor whose per-fragment counts are refreshed
    /// incrementally from each apply's changed-fragment set — no full
    /// scans on the serving path. `None` when not configured.
    balance: Option<(BalancePolicy, BalanceMonitor)>,
}

impl<V, E> Session<V, E, Engine<V, E>>
where
    V: Clone + Send + Sync + 'static,
    E: Clone + PartialOrd + Send + Sync + 'static,
{
    /// Start building a session over `graph` (see [`SessionBuilder`]).
    pub fn builder(graph: Graph<V, E>) -> SessionBuilder<V, E> {
        SessionBuilder::new(graph)
    }

    /// Start building a session that resumes the durable directory
    /// `dir`: open loads the manifest's snapshot epoch, re-attaches
    /// each registered program's persisted state, and replays the delta
    /// log — landing byte-identical to the process that wrote it.
    pub fn restore(dir: impl AsRef<Path>) -> SessionBuilder<V, E>
    where
        V: Codec,
        E: Codec,
    {
        SessionBuilder::restore_from(dir)
    }
}

impl<V, E, B> Session<V, E, B>
where
    V: Clone + Send + Sync + 'static,
    E: Clone + PartialOrd + Send + Sync + 'static,
    B: Backend<V, E>,
{
    /// The fragments the session computes over.
    pub fn fragments(&self) -> &[Arc<Fragment<V, E>>] {
        self.backend.fragments()
    }

    /// The underlying backend (read access — e.g. engine options).
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// Registered program names, in registration order.
    pub fn program_names(&self) -> impl Iterator<Item = &str> {
        self.slots.iter().map(|(n, _)| n.as_str())
    }

    /// True when the session snapshots and logs (`.durable(dir)`).
    pub fn is_durable(&self) -> bool {
        self.durable.is_some()
    }

    /// The current durable snapshot epoch, if durable.
    pub fn epoch(&self) -> Option<u64> {
        self.durable.as_ref().map(|d| d.epoch())
    }

    /// The committed epoch chain (newest first, ending at a full
    /// baseline), if durable. Always a single epoch under
    /// `differential(false)` policies.
    pub fn epoch_chain(&self) -> Option<&[u64]> {
        self.durable.as_ref().map(|d| d.chain.as_slice())
    }

    /// The session-wide publication version (0 until something is
    /// published; bumped by every publication event).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Protocol-level serving counters (see [`SessionMetrics`]):
    /// publication version, fresh vs cache-served queries, admitted
    /// answers, applies, checkpoints. Exact integers independent of
    /// thread scheduling; with tracing enabled the same values are
    /// emitted as counter tracks.
    pub fn metrics(&self) -> SessionMetrics {
        SessionMetrics { publications: self.version, ..self.metrics }
    }

    /// Emit every serving counter as a Chrome counter event on the
    /// session process — one sample per call, stepped tracks in the
    /// viewer. Callers guard with `tracer.enabled()`.
    fn emit_counters(&self) {
        let m = self.metrics();
        self.tracer.counter(pid::SESSION, 0, "publications", m.publications);
        self.tracer.counter(pid::SESSION, 0, "fresh_queries", m.fresh_queries);
        self.tracer.counter(pid::SESSION, 0, "answer_cache_hits", m.answer_cache_hits);
        self.tracer.counter(pid::SESSION, 0, "admitted", m.admitted);
        if self.durable.is_some() {
            self.tracer.counter(pid::SESSION, 0, "checkpoints", m.checkpoints);
            self.tracer.counter(
                pid::SESSION,
                0,
                "checkpoint_fragments_written",
                m.checkpoint_fragments_written,
            );
            self.tracer.counter(
                pid::SESSION,
                0,
                "checkpoint_fragments_skipped",
                m.checkpoint_fragments_skipped,
            );
            self.tracer.counter(pid::SESSION, 0, "checkpoint_bytes", m.checkpoint_bytes);
            self.tracer.counter(pid::SESSION, 0, "log_records_compacted", m.log_records_compacted);
        }
        if self.balance.is_some() {
            self.tracer.counter(pid::SESSION, 0, "rebalances", m.rebalances);
            self.tracer.counter(pid::SESSION, 0, "vertices_migrated", m.vertices_migrated);
            self.tracer.counter(pid::SESSION, 0, "migration_bytes", m.migration_bytes);
        }
    }

    fn slot_index(&self, name: &str) -> Result<usize, SessionError> {
        self.slots.iter().position(|(n, _)| n == name).ok_or_else(|| SessionError::UnknownProgram {
            name: name.to_string(),
            registered: self.slots.iter().map(|(n, _)| n.clone()).collect(),
        })
    }

    /// Look program `name` up and downcast its slot to the caller's
    /// program type — the shared head of every typed accessor.
    fn typed_slot<P>(&self, name: &str) -> Result<&Slot<V, E, P>, SessionError>
    where
        P: WarmStart<V, E> + 'static,
        P::Query: Clone + PartialEq + Send + Sync + 'static,
        P::Out: Clone + Send + Sync + 'static,
    {
        let idx = self.slot_index(name)?;
        self.slots[idx]
            .1
            .as_any()
            .downcast_ref::<Slot<V, E, P>>()
            .ok_or_else(|| SessionError::ProgramType { name: name.to_string() })
    }

    /// Serve a query against program `name`, which must have been
    /// registered with program type `P` (checked; mismatches are a
    /// [`SessionError::ProgramType`]).
    ///
    /// Serving is **non-evicting**: the program retains one warm
    /// fixpoint (its *retained query*, set by the first-ever query and
    /// switched only by [`Session::retain_query`]) that
    /// [`Session::apply`] keeps current across deltas, and every other
    /// query value is answered by a cold run that does *not* disturb
    /// that state, cached in a small bounded per-program answer cache
    /// (capacity via [`SessionBuilder::answer_cache`], MRU eviction).
    /// Repeats of the retained query or of a cached value never touch
    /// the engine; the returned value is a clone — use
    /// [`Session::output`] for a zero-copy borrow, or a
    /// [`Session::reader`] handle for `Arc`-cheap concurrent reads.
    ///
    /// Applying a delta clears the answer cache (its entries described
    /// the pre-apply graph) and warm-advances only the retained query.
    /// Every freshly computed answer is epoch-published for readers.
    ///
    /// On a durable session only the retained query is checkpointed:
    /// state files record it as of the last [`Session::checkpoint`],
    /// and a restore resumes it (the applied delta stream — what the
    /// log records — replays exactly either way; re-querying other
    /// values after restore is one cold run each).
    pub fn query<P>(&mut self, name: &str, q: &P::Query) -> Result<P::Out, SessionError>
    where
        P: WarmStart<V, E> + 'static,
        P::Query: Clone + PartialEq + Send + Sync + 'static,
        P::Out: Clone + Send + Sync + 'static,
    {
        // `query` mutates the slot while borrowing the backend, so it
        // needs the split-borrow form of `typed_slot` inline.
        let idx = self.slot_index(name)?;
        let out = {
            let Session { slots, backend, version, tracer, metrics, .. } = self;
            let slot = slots[idx]
                .1
                .as_any_mut()
                .downcast_mut::<Slot<V, E, P>>()
                .ok_or_else(|| SessionError::ProgramType { name: name.to_string() })?;
            let traced = tracer.enabled();
            if traced {
                tracer.begin(pid::SESSION, idx as u32, cat::SERVE, "query", Args::new());
            }
            let (out, fresh) = slot.serve(backend, q);
            if fresh {
                *version += 1;
                slot.publish_at(*version);
                metrics.fresh_queries += 1;
            } else {
                metrics.answer_cache_hits += 1;
            }
            if traced {
                tracer.end(
                    pid::SESSION,
                    idx as u32,
                    cat::SERVE,
                    "query",
                    Args::new().with("fresh", fresh).with("version", *version),
                );
            }
            out
        };
        if self.tracer.enabled() {
            self.emit_counters();
        }
        Ok((*out).clone())
    }

    /// Make `q` program `name`'s **retained** query — the one fixpoint
    /// [`Session::apply`] warm-advances — via a cold retained run that
    /// replaces the current warm state. The previous retained answer is
    /// demoted into the answer cache (it still describes the current
    /// graph). Use this deliberately when the serving focus moves;
    /// plain [`Session::query`] never evicts.
    pub fn retain_query<P>(&mut self, name: &str, q: &P::Query) -> Result<P::Out, SessionError>
    where
        P: WarmStart<V, E> + 'static,
        P::Query: Clone + PartialEq + Send + Sync + 'static,
        P::Out: Clone + Send + Sync + 'static,
    {
        let idx = self.slot_index(name)?;
        let Session { slots, backend, version, tracer, .. } = self;
        let slot = slots[idx]
            .1
            .as_any_mut()
            .downcast_mut::<Slot<V, E, P>>()
            .ok_or_else(|| SessionError::ProgramType { name: name.to_string() })?;
        let traced = tracer.enabled();
        if traced {
            tracer.begin(pid::SESSION, idx as u32, cat::SERVE, "retain_query", Args::new());
        }
        let out = slot.retain(backend, q);
        *version += 1;
        slot.publish_at(*version);
        if traced {
            tracer.end(
                pid::SESSION,
                idx as u32,
                cat::SERVE,
                "retain_query",
                Args::new().with("version", *version),
            );
        }
        Ok((*out).clone())
    }

    /// Answer every query value readers have
    /// [requested](SessionReader::request) since the last admission
    /// window, program by program: each distinct queued value is served
    /// from the retained fixpoint, the answer cache, or one cold run,
    /// and every program that computed something republishes. Returns
    /// the number of newly computed answers across all programs.
    pub fn serve_admitted(&mut self) -> Result<usize, SessionError> {
        let traced = self.tracer.enabled();
        if traced {
            self.tracer.begin(pid::SESSION, 0, cat::SERVE, "serve_admitted", Args::new());
        }
        let Session { slots, backend, version, .. } = self;
        let mut fresh = 0;
        for (_, slot) in slots.iter_mut() {
            let n = slot.serve_pending(backend);
            if n > 0 {
                *version += 1;
                slot.publish(*version);
                fresh += n;
            }
        }
        self.metrics.admitted += fresh as u64;
        if traced {
            self.tracer.end(
                pid::SESSION,
                0,
                cat::SERVE,
                "serve_admitted",
                Args::new().with("computed", fresh).with("version", self.version),
            );
            self.emit_counters();
        }
        Ok(fresh)
    }

    /// A cheaply-cloneable read handle over every program's published
    /// fixpoint: clone one per thread and serve
    /// [`SessionReader::query`] / [`SessionReader::output`] by `&self`
    /// while this session (the single writer) keeps applying deltas.
    /// Readers observe complete pre- or post-apply fixpoints only —
    /// never a torn mix — and values the writer has not served read as
    /// `None` until admitted ([`SessionReader::request`] +
    /// [`Session::serve_admitted`]).
    pub fn reader(&self) -> SessionReader<V, E> {
        SessionReader::from_parts(
            self.slots
                .iter()
                .map(|(n, s)| {
                    let (cell, pending) = s.reader_parts();
                    (n.clone(), cell, pending)
                })
                .collect(),
        )
    }

    /// Borrow program `name`'s cached assembled output for its retained
    /// query (`None` until a query materializes one) — the zero-copy
    /// serving path for read-heavy callers, where [`Session::query`]
    /// would clone the whole assembled vector per call.
    pub fn output<P>(&self, name: &str) -> Result<Option<&P::Out>, SessionError>
    where
        P: WarmStart<V, E> + 'static,
        P::Query: Clone + PartialEq + Send + Sync + 'static,
        P::Out: Clone + Send + Sync + 'static,
    {
        Ok(self.typed_slot::<P>(name)?.output())
    }

    /// The retained [`RunState`] of program `name` (`None` until a
    /// query materializes one) — diagnostic/test access; the
    /// equivalence suites compare it against hand-rolled compositions.
    pub fn run_state<P>(&self, name: &str) -> Result<Option<&RunState<P::State>>, SessionError>
    where
        P: WarmStart<V, E> + 'static,
        P::Query: Clone + PartialEq + Send + Sync + 'static,
        P::Out: Clone + Send + Sync + 'static,
    {
        Ok(self.typed_slot::<P>(name)?.state())
    }

    /// The query program `name` currently retains, if any.
    pub fn retained_query<P>(&self, name: &str) -> Result<Option<&P::Query>, SessionError>
    where
        P: WarmStart<V, E> + 'static,
        P::Query: Clone + PartialEq + Send + Sync + 'static,
        P::Out: Clone + Send + Sync + 'static,
    {
        Ok(self.typed_slot::<P>(name)?.current_query())
    }

    /// Apply a delta batch: plan every retained program's invalidation
    /// **pre-apply**, mutate the fragments in place **once**, then
    /// advance each program with its own strategy (warm-decrease /
    /// warm-increase through `warm_eval`, or a cold retained rerun).
    /// Durable sessions append the delta to the log after a successful
    /// apply. If that append fails, the in-memory state is already
    /// advanced but the on-disk history is not — the session latches
    /// [`SessionError::LogWedged`] and refuses further applies until a
    /// successful [`Session::checkpoint`] re-baselines the directory
    /// (queries keep serving the consistent in-memory state meanwhile).
    pub fn apply(&mut self, delta: &GraphDelta<V, E>) -> Result<ApplyReport, SessionError> {
        // Settle a finished background cut first: its epoch flip (or
        // failure wedge) must land before this delta is logged.
        self.harvest_pending(false);
        if self.durable.as_ref().is_some_and(|d| d.log_wedged) {
            return Err(SessionError::LogWedged);
        }
        let traced = self.tracer.enabled();
        if traced {
            self.tracer.begin(pid::SESSION, 0, cat::APPLY, "apply", Args::new());
        }
        let result = self.apply_inner(delta);
        if traced {
            let advanced = result.as_ref().map(|(r, _)| r.programs.len()).unwrap_or(0);
            self.tracer.end(
                pid::SESSION,
                0,
                cat::APPLY,
                "apply",
                Args::new()
                    .with("ok", result.is_ok())
                    .with("advanced", advanced)
                    .with("version", self.version),
            );
            self.emit_counters();
        }
        let (report, changed) = result?;
        if let Some(d) = &mut self.durable {
            // Dirty bits accumulate before the log append so a wedged
            // delta's fragments are still written by the healing
            // checkpoint.
            for (bit, c) in d.dirty.iter_mut().zip(&changed) {
                *bit |= *c;
            }
            d.applies_since_checkpoint += 1;
            if let Err(e) = (d.spec.write_delta)(&mut d.log, delta) {
                d.log_wedged = true;
                if let Some(p) = &mut d.pending {
                    p.wedged_since_cut = true;
                }
                return Err(SessionError::Snapshot(e));
            }
            d.log_records += 1;
            // During an in-flight background cut, dual-write: whichever
            // epoch a crash leaves committed has a complete log.
            if let Some(p) = &mut d.pending {
                if let Err(e) = (d.spec.write_delta)(&mut p.new_log, delta) {
                    d.log_wedged = true;
                    p.wedged_since_cut = true;
                    return Err(SessionError::Snapshot(e));
                }
                p.new_log_records += 1;
            }
        }
        // Auto-rebalance fires before the checkpoint cadence check so a
        // due checkpoint persists the migrated layout in the same turn.
        let auto_due = self
            .balance
            .as_ref()
            .is_some_and(|(p, mon)| p.auto && mon.report().imbalance > p.max_imbalance);
        if auto_due {
            self.rebalance()?;
        }
        // Automatic cadence: fire once the policy's apply budget is
        // spent (never while a cut is already in flight).
        let due = self.durable.as_ref().is_some_and(|d| {
            d.pending.is_none()
                && d.policy.checkpoint_every.is_some_and(|n| d.applies_since_checkpoint >= n)
        });
        if due {
            if self.durable.as_ref().is_some_and(|d| d.policy.background) {
                self.checkpoint_background()?;
            } else {
                self.checkpoint()?;
            }
        }
        Ok(report)
    }

    /// The shared core of `apply` and restore's replay: mutate, advance,
    /// and publish, returning the report plus the per-fragment
    /// changed-bytes set (what differential checkpoints accumulate).
    #[allow(clippy::type_complexity)]
    fn apply_inner(
        &mut self,
        delta: &GraphDelta<V, E>,
    ) -> Result<(ApplyReport, Vec<bool>), SessionError> {
        // 1. Pre-apply planning on the old fragments + old states.
        let planned: Vec<Option<Planned>> = {
            let view: Vec<&Fragment<V, E>> =
                self.backend.fragments().iter().map(|a| &**a).collect();
            let tracer = &self.tracer;
            self.slots.iter_mut().map(|(_, s)| s.plan(&view, delta, tracer)).collect()
        };
        // 2. One in-place fragment mutation, shared by all programs —
        // the touched-fragment repacks run on the backend's worker
        // budget (byte-identical to serial; see `aap_graph::mutate`).
        let threads = self.backend.apply_threads();
        let applied = {
            // While a background cut holds fragment `Arc`s, mutate
            // copy-on-write: shared fragments detach (the cut keeps the
            // pre-apply bytes), exclusive ones mutate in place free.
            // Otherwise keep the strict path — a run output still
            // borrowing the fragments is a caller bug to surface.
            let cow = self.durable.as_ref().is_some_and(|d| d.pending.is_some());
            let mut frags = if cow {
                self.backend.fragments_cow()
            } else {
                self.backend.fragments_mut().ok_or(SessionError::SharedFragments)?
            };
            apply_to_fragments_par_traced(&mut frags, delta, &mut self.bufs, threads, &self.tracer)
        };
        self.metrics.applies += 1;
        // 3. Advance every program that holds retained state, then
        // publish every advanced fixpoint under one version so readers
        // flip from the pre-apply epoch to the post-apply one whole.
        let mut programs = Vec::new();
        let mut advanced = vec![false; self.slots.len()];
        for (i, ((name, slot), plan)) in self.slots.iter_mut().zip(planned).enumerate() {
            if let Some(adv) = slot.advance(&self.backend, &applied, plan) {
                advanced[i] = true;
                programs.push(ProgramApply {
                    name: name.clone(),
                    strategy: adv.strategy,
                    updates: adv.stats.total_updates(),
                });
            }
        }
        if advanced.iter().any(|&a| a) {
            self.version += 1;
            for (i, (_, slot)) in self.slots.iter().enumerate() {
                if advanced[i] {
                    slot.publish(self.version);
                }
            }
        }
        // 4. Keep the drift monitor current: recount only the fragments
        // this batch touched, and fold in the per-fragment delta-touch
        // rates (invalidation seed counts) the planners use as a
        // hotness signal.
        if self.balance.is_some() {
            let touches: Vec<usize> = applied.seeds.iter().map(|s| s.len()).collect();
            let Session { backend, balance, .. } = self;
            if let Some((_, mon)) = balance.as_mut() {
                mon.refresh(backend.fragments(), &applied.changed);
                mon.record_touches(&touches);
            }
        }
        Ok((ApplyReport { summary: applied.summary, programs }, applied.changed))
    }

    /// Take the cut a checkpoint commits: decide full vs differential
    /// (policy + compaction threshold), consume the dirty set, and
    /// encode every program's state delta on the calling thread. After
    /// this the epoch's *contents* are fixed; only serialization and
    /// the manifest flip remain (inline for [`Session::checkpoint`], on
    /// a thread for [`Session::checkpoint_background`]).
    fn plan_cut(&mut self) -> CutMaterials {
        let Session { backend, slots, durable, .. } = self;
        let d = durable.as_mut().expect("callers checked durability");
        let frags = backend.fragments();
        let m = frags.len();
        let next = d.chain[0] + 1;
        let compacting = d.policy.compact_after.is_some_and(|k| d.chain.len() as u64 >= k);
        let full = !d.policy.differential || compacting;
        let new_chain: Vec<u64> = if full {
            vec![next]
        } else {
            std::iter::once(next).chain(d.chain.iter().copied()).collect()
        };
        let cut_dirty = std::mem::replace(&mut d.dirty, vec![false; m]);
        let mut state_files = Vec::new();
        let mut new_crcs = HashMap::new();
        let mut state_bytes = 0u64;
        for (name, slot) in slots.iter() {
            let prev = if full { None } else { d.state_crcs.get(name) };
            if let Some(enc) = slot.encode_state(frags, prev) {
                new_crcs.insert(name.clone(), enc.crcs);
                if let Some(bytes) = enc.file {
                    state_bytes += bytes.len() as u64;
                    state_files.push((state_path(&d.spec.dir, next, name), bytes));
                }
            }
        }
        d.applies_since_checkpoint = 0;
        CutMaterials {
            next,
            new_chain,
            full,
            cut_dirty,
            state_files,
            new_crcs,
            state_bytes,
            log_records_at_cut: d.log_records,
        }
    }

    /// Accumulate a committed checkpoint into the serving counters.
    fn record_checkpoint(&mut self, report: &CheckpointReport) {
        self.metrics.checkpoints += 1;
        self.metrics.checkpoint_fragments_written += report.fragments_written;
        self.metrics.checkpoint_fragments_skipped += report.fragments_skipped;
        self.metrics.checkpoint_bytes += report.bytes;
        self.metrics.log_records_compacted += report.log_records_compacted;
    }

    /// Settle a background cut whose thread has finished (or, with
    /// `block`, wait for it): on success install the new chain, rotate
    /// to the dual-written log, and adopt the cut's state fingerprints;
    /// on failure re-wedge (exactly like a failed log append) and merge
    /// the cut's dirty set back so the next attempt still writes those
    /// fragments. `None` when nothing was pending (or, non-blocking,
    /// nothing finished yet).
    fn harvest_pending(&mut self, block: bool) -> Option<Result<CheckpointReport, SessionError>> {
        let outcome = {
            let d = self.durable.as_mut()?;
            {
                let p = d.pending.as_ref()?;
                let (lock, cvar) = &*p.result;
                let mut slot = lock.lock().unwrap_or_else(|e| e.into_inner());
                if block {
                    while slot.is_none() {
                        slot = cvar.wait(slot).unwrap_or_else(|e| e.into_inner());
                    }
                } else if slot.is_none() {
                    return None;
                }
            }
            let mut p = d.pending.take().expect("checked above");
            if let Some(h) = p.handle.take() {
                let _ = h.join();
            }
            // Clone, don't take: `CheckpointHandle`s observe the same
            // cell and must keep seeing the result after the harvest.
            let result = p
                .result
                .0
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .clone()
                .expect("joined thread published its result");
            match result {
                Ok(report) => {
                    d.chain = p.new_chain;
                    d.log = p.new_log;
                    d.state_crcs = p.new_crcs;
                    d.log_records = p.new_log_records;
                    // The flip heals a wedge from *before* the cut (the
                    // committed epoch embodies the unlogged delta) but
                    // not one from after it — the new log is missing
                    // that delta too.
                    d.log_wedged = p.wedged_since_cut;
                    Ok(report)
                }
                Err(detail) => {
                    d.log_wedged = true;
                    for (bit, c) in d.dirty.iter_mut().zip(&p.cut_dirty) {
                        *bit |= *c;
                    }
                    Err(SessionError::Checkpoint { detail })
                }
            }
        };
        if let Ok(report) = &outcome {
            self.record_checkpoint(report);
            if self.tracer.enabled() {
                self.tracer.instant(
                    pid::SESSION,
                    0,
                    cat::DURABLE,
                    "checkpoint_committed",
                    Args::new().with("epoch", report.epoch),
                );
                self.emit_counters();
            }
        }
        Some(outcome)
    }

    /// Current balance snapshot from the drift monitor — per-fragment
    /// loads, cumulative delta-touch rates, full partition statistics,
    /// and the `max/mean` imbalance ratio — or `None` when the session
    /// was opened without [`SessionBuilder::balance`]. Reads the
    /// incrementally maintained counters; never scans fragments.
    pub fn balance_report(&self) -> Option<BalanceReport> {
        self.balance.as_ref().map(|(_, mon)| mon.report())
    }

    /// Rebalance the partition in place: plan a bounded set of
    /// ownership moves from overloaded fragments to underloaded ones
    /// (cost-aware: load reduction scored against new cut edges), repack
    /// only the affected fragments, and settle every retained program's
    /// warm state across the new layout — the next apply or query is
    /// warm, never cold. With `BalancePolicy::auto(true)` this fires
    /// automatically after an apply that leaves the partition over
    /// threshold; calling it explicitly is always allowed.
    ///
    /// A rebalance is **not** logged on durable sessions: the delta log
    /// replays onto the pre-rebalance partition and lands on the same
    /// fixpoints, because assembled outputs are partition-independent.
    /// Migrated fragments are marked dirty instead, so the next
    /// (differential) checkpoint persists the new layout. A crash
    /// before that checkpoint restores the pre-plan partition; after
    /// it, the post-plan one — both consistent.
    ///
    /// Errors with [`SessionError::NoBalancePolicy`] when the session
    /// was opened without [`SessionBuilder::balance`].
    pub fn rebalance(&mut self) -> Result<RebalanceReport, SessionError> {
        if self.balance.is_none() {
            return Err(SessionError::NoBalancePolicy);
        }
        // Settle a finished background cut first: it decides whether the
        // migration mutates in place or copy-on-write.
        self.harvest_pending(false);
        let traced = self.tracer.enabled();
        if traced {
            self.tracer.begin(pid::SESSION, 0, cat::BALANCE, "rebalance", Args::new());
        }
        let result = self.rebalance_inner();
        if traced {
            let (moved, after) = result
                .as_ref()
                .map(|r| (r.vertices_migrated, r.imbalance_after))
                .unwrap_or((0, 0.0));
            self.tracer.end(
                pid::SESSION,
                0,
                cat::BALANCE,
                "rebalance",
                Args::new()
                    .with("ok", result.is_ok())
                    .with("moved", moved)
                    .with("imbalance_after", after),
            );
            self.emit_counters();
        }
        result
    }

    fn rebalance_inner(&mut self) -> Result<RebalanceReport, SessionError> {
        let (policy, before) = {
            let (p, mon) = self.balance.as_ref().expect("caller checked");
            (p.clone(), mon.report().imbalance)
        };
        let plan = plan_migration(self.backend.fragments(), &policy, &self.tracer);
        if plan.is_empty() {
            return Ok(RebalanceReport {
                imbalance_before: before,
                imbalance_after: before,
                vertices_migrated: 0,
                migration_bytes: 0,
                fragments_repacked: 0,
            });
        }
        let applied = {
            // Same copy-on-write rule as `apply_inner`: an in-flight
            // background cut holds the pre-migration fragment bytes.
            let cow = self.durable.as_ref().is_some_and(|d| d.pending.is_some());
            let mut frags = if cow {
                self.backend.fragments_cow()
            } else {
                self.backend.fragments_mut().ok_or(SessionError::SharedFragments)?
            };
            execute_migration(&mut frags, &plan, &self.tracer)
        };
        // Settle retained state: one warm run per stateful program
        // through the migration remaps and seeds, published whole under
        // a single version bump.
        let mut advanced = vec![false; self.slots.len()];
        for (i, (_, slot)) in self.slots.iter_mut().enumerate() {
            advanced[i] = slot.migrate(&self.backend, &applied.remaps, &applied.seeds);
        }
        if advanced.iter().any(|&a| a) {
            self.version += 1;
            for (i, (_, slot)) in self.slots.iter().enumerate() {
                if advanced[i] {
                    slot.publish(self.version);
                }
            }
        }
        let after = {
            let Session { backend, balance, .. } = self;
            let (_, mon) = balance.as_mut().expect("caller checked");
            mon.refresh(backend.fragments(), &applied.changed);
            mon.report().imbalance
        };
        self.metrics.rebalances += 1;
        self.metrics.vertices_migrated += plan.moves.len() as u64;
        self.metrics.migration_bytes += plan.bytes;
        // Deliberately NOT logged (see the method docs): only the dirty
        // bits advance, so the next checkpoint persists the layout.
        if let Some(d) = &mut self.durable {
            for (bit, c) in d.dirty.iter_mut().zip(&applied.changed) {
                *bit |= *c;
            }
        }
        Ok(RebalanceReport {
            imbalance_before: before,
            imbalance_after: after,
            vertices_migrated: plan.moves.len() as u64,
            migration_bytes: plan.bytes,
            fragments_repacked: applied.changed.iter().filter(|c| **c).count(),
        })
    }

    /// Write the next durable epoch — per policy a full baseline or a
    /// differential link carrying only fragments (and program-state
    /// shards) whose bytes changed — flip the manifest, and start a
    /// fresh delta log. The superseded log's records are compacted away
    /// with every file the new chain no longer references. Runs
    /// foreground (an in-flight background cut is settled first); see
    /// [`Session::checkpoint_background`] for the non-blocking form.
    pub fn checkpoint(&mut self) -> Result<CheckpointReport, SessionError> {
        // Settle an in-flight cut first: its flip (or failure wedge)
        // precedes this epoch, which supersedes it either way.
        self.harvest_pending(true);
        if self.durable.is_none() {
            return Err(SessionError::NotDurable);
        }
        let traced = self.tracer.enabled();
        let cut = self.plan_cut();
        if traced {
            self.tracer.begin(
                pid::SESSION,
                0,
                cat::DURABLE,
                "checkpoint",
                Args::new().with("epoch", cut.next).with("differential", !cut.full),
            );
        }
        let result = (|| -> Result<(u64, DeltaLog), SessionError> {
            let d = self.durable.as_ref().expect("checked above");
            let frags = self.backend.fragments();
            let graph_bytes = if cut.full {
                (d.spec.save_frags)(&graph_path(&d.spec.dir, cut.next), frags)?
            } else {
                (d.spec.save_diff_frags)(
                    &graph_path(&d.spec.dir, cut.next),
                    frags.len() as u16,
                    frags,
                    &cut.cut_dirty,
                )?
            };
            for (path, bytes) in &cut.state_files {
                write_file_atomic(path, bytes)?;
            }
            let new_log = DeltaLog::create(log_path(&d.spec.dir, cut.next))?;
            (d.spec.write_manifest)(&d.spec.dir, &cut.new_chain)?;
            Ok((graph_bytes, new_log))
        })();
        let outcome = match result {
            Err(e) => {
                // Nothing committed: put the consumed dirty set back so
                // the next attempt still writes those fragments.
                let d = self.durable.as_mut().expect("checked above");
                for (bit, c) in d.dirty.iter_mut().zip(&cut.cut_dirty) {
                    *bit |= *c;
                }
                Err(e)
            }
            Ok((graph_bytes, new_log)) => {
                let d = self.durable.as_mut().expect("checked above");
                let m = cut.cut_dirty.len() as u64;
                let fragments_written =
                    if cut.full { m } else { cut.cut_dirty.iter().filter(|b| **b).count() as u64 };
                let report = CheckpointReport {
                    epoch: cut.next,
                    fragments_written,
                    fragments_skipped: m - fragments_written,
                    bytes: graph_bytes + cut.state_bytes,
                    log_records_compacted: cut.log_records_at_cut,
                    differential: !cut.full,
                };
                d.chain = cut.new_chain;
                d.log = new_log;
                d.state_crcs = cut.new_crcs;
                d.log_records = 0;
                // The fresh epoch embodies every applied delta, logged
                // or not: a wedged log is healed by re-baselining.
                d.log_wedged = false;
                // Best-effort cleanup of everything the new chain no
                // longer references — including generations stranded by
                // a crash mid-checkpoint.
                sweep_stale_epochs(&d.spec.dir, &d.chain);
                self.record_checkpoint(&report);
                Ok(report)
            }
        };
        if traced {
            self.tracer.end(
                pid::SESSION,
                0,
                cat::DURABLE,
                "checkpoint",
                Args::new().with("epoch", cut.next).with("ok", outcome.is_ok()),
            );
            self.emit_counters();
        }
        outcome
    }

    /// Start a checkpoint behind a **consistent cut** and return
    /// immediately: the cut clones fragment `Arc`s and encodes program
    /// states (cheap), creates the next epoch's log, and hands
    /// serialization + the atomic manifest flip to a background thread
    /// while this session keeps applying and serving — applies during
    /// the window mutate copy-on-write and are written to *both* logs,
    /// so whichever epoch a crash leaves committed replays completely.
    ///
    /// Completion is observable on the returned [`CheckpointHandle`];
    /// the session itself settles the result (epoch advance, or a
    /// [`SessionError::Checkpoint`] re-wedge on failure) at its next
    /// `apply`/`checkpoint`/[`Session::finish_checkpoint`]. Dropping
    /// the session lets an in-flight cut finish on its own.
    pub fn checkpoint_background(&mut self) -> Result<CheckpointHandle, SessionError> {
        // One cut at a time: settle any previous one first.
        self.harvest_pending(true);
        if self.durable.is_none() {
            return Err(SessionError::NotDurable);
        }
        let traced = self.tracer.enabled();
        let cut = self.plan_cut();
        let frags: Vec<Arc<Fragment<V, E>>> = self.backend.fragments().to_vec();
        let d = self.durable.as_mut().expect("checked above");
        let new_log = match DeltaLog::create(log_path(&d.spec.dir, cut.next)) {
            Ok(log) => log,
            Err(e) => {
                for (bit, c) in d.dirty.iter_mut().zip(&cut.cut_dirty) {
                    *bit |= *c;
                }
                return Err(SessionError::Snapshot(e));
            }
        };
        let cell: CheckpointCell = Arc::new((Mutex::new(None), Condvar::new()));
        let dir = d.spec.dir.clone();
        let save_frags = d.spec.save_frags;
        let save_diff_frags = d.spec.save_diff_frags;
        let write_manifest_fn = d.spec.write_manifest;
        let CutMaterials {
            next,
            new_chain,
            full,
            cut_dirty,
            state_files,
            new_crcs,
            state_bytes,
            log_records_at_cut,
        } = cut;
        let write_set = cut_dirty.clone();
        let thread_chain = new_chain.clone();
        let thread_cell = Arc::clone(&cell);
        let handle = std::thread::spawn(move || {
            let result = (move || -> Result<CheckpointReport, String> {
                let m = frags.len() as u64;
                let graph_bytes = if full {
                    save_frags(&graph_path(&dir, next), &frags)
                } else {
                    save_diff_frags(&graph_path(&dir, next), frags.len() as u16, &frags, &write_set)
                }
                .map_err(|e| e.to_string())?;
                for (path, bytes) in &state_files {
                    write_file_atomic(path, bytes).map_err(|e| e.to_string())?;
                }
                write_manifest_fn(&dir, &thread_chain).map_err(|e| e.to_string())?;
                sweep_stale_epochs(&dir, &thread_chain);
                let fragments_written =
                    if full { m } else { write_set.iter().filter(|b| **b).count() as u64 };
                Ok(CheckpointReport {
                    epoch: next,
                    fragments_written,
                    fragments_skipped: m - fragments_written,
                    bytes: graph_bytes + state_bytes,
                    log_records_compacted: log_records_at_cut,
                    differential: !full,
                })
            })();
            let (lock, cvar) = &*thread_cell;
            *lock.lock().unwrap_or_else(|e| e.into_inner()) = Some(result);
            cvar.notify_all();
        });
        d.pending = Some(PendingCut {
            new_log,
            new_chain,
            cut_dirty,
            new_crcs,
            new_log_records: 0,
            wedged_since_cut: false,
            handle: Some(handle),
            result: Arc::clone(&cell),
        });
        if traced {
            self.tracer.instant(
                pid::SESSION,
                0,
                cat::DURABLE,
                "checkpoint_cut",
                Args::new().with("epoch", next).with("differential", !full),
            );
        }
        Ok(CheckpointHandle { cell })
    }

    /// Block until an in-flight background checkpoint commits and
    /// settle it on the session: `Ok(Some(report))` on commit,
    /// `Ok(None)` when nothing was pending, and the re-wedging
    /// [`SessionError::Checkpoint`] if the cut failed.
    pub fn finish_checkpoint(&mut self) -> Result<Option<CheckpointReport>, SessionError> {
        match self.harvest_pending(true) {
            None => Ok(None),
            Some(Ok(report)) => Ok(Some(report)),
            Some(Err(e)) => Err(e),
        }
    }

    /// Swap individual steps of the durable vtable — crash-injection
    /// suites cut the process at an exact checkpoint point (fragment
    /// save, manifest flip) by substituting a failing stand-in. `None`
    /// leaves a step unchanged. No-op on non-durable sessions.
    #[doc(hidden)]
    pub fn inject_durable_vtable(
        &mut self,
        save_frags: Option<SaveFragsFn<V, E>>,
        save_diff_frags: Option<SaveDiffFragsFn<V, E>>,
        write_manifest: Option<WriteManifestFn>,
    ) {
        if let Some(d) = &mut self.durable {
            if let Some(f) = save_frags {
                d.spec.save_frags = f;
            }
            if let Some(f) = save_diff_frags {
                d.spec.save_diff_frags = f;
            }
            if let Some(f) = write_manifest {
                d.spec.write_manifest = f;
            }
        }
    }
}

/// Everything a checkpoint writes, fixed at the cut: the epoch, the
/// chain it commits, the fragment write set, and the pre-encoded
/// program-state files.
struct CutMaterials {
    next: u64,
    new_chain: Vec<u64>,
    full: bool,
    cut_dirty: Vec<bool>,
    state_files: Vec<(PathBuf, Vec<u8>)>,
    new_crcs: HashMap<String, StateCrcs>,
    state_bytes: u64,
    log_records_at_cut: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use aap_algos::{ConnectedComponents, Sssp};
    use aap_delta::DeltaBuilder;
    use aap_graph::generate;

    /// Satellite (ISSUE 6): a typo'd program name must say what IS
    /// registered, not just echo the typo back.
    #[test]
    fn unknown_program_error_names_the_registered_programs() {
        let g = generate::small_world(40, 2, 0.2, 1);
        let mut session = Session::builder(g)
            .partition(edge_cut(2))
            .program("sssp", Sssp)
            .program("cc", ConnectedComponents)
            .open()
            .unwrap();
        let err = session.query::<Sssp>("ssps", &0).expect_err("typo'd name must fail");
        assert!(matches!(
            &err,
            SessionError::UnknownProgram { name, registered }
                if name == "ssps" && registered == &["sssp".to_string(), "cc".to_string()]
        ));
        let msg = err.to_string();
        assert!(msg.contains("\"ssps\""), "{msg}");
        assert!(msg.contains("\"sssp\"") && msg.contains("\"cc\""), "{msg}");

        let g = generate::small_world(40, 2, 0.2, 1);
        let mut empty = Session::<(), u32, _>::builder(g).partition(edge_cut(2)).open().unwrap();
        let msg = empty.query::<Sssp>("sssp", &0).expect_err("nothing registered").to_string();
        assert!(msg.contains("no programs are registered"), "{msg}");
    }

    /// The admission semantics end to end: `query` never evicts the
    /// retained fixpoint, cache hits publish nothing, `retain_query`
    /// switches explicitly and demotes the old retained answer.
    #[test]
    fn query_is_non_evicting_and_retain_query_switches() {
        let g = generate::small_world(80, 2, 0.2, 9);
        let mut session =
            Session::builder(g).partition(edge_cut(2)).program("sssp", Sssp).open().unwrap();
        let from0 = session.query::<Sssp>("sssp", &0).unwrap();
        assert_eq!(session.retained_query::<Sssp>("sssp").unwrap(), Some(&0));
        let v1 = session.version();
        let from5 = session.query::<Sssp>("sssp", &5).unwrap();
        assert_ne!(from0, from5);
        assert_eq!(
            session.retained_query::<Sssp>("sssp").unwrap(),
            Some(&0),
            "a different query value must NOT evict the retained fixpoint"
        );
        assert!(session.version() > v1, "a freshly computed answer is published");
        let v2 = session.version();
        assert_eq!(session.query::<Sssp>("sssp", &5).unwrap(), from5);
        assert_eq!(session.version(), v2, "an answer-cache hit publishes nothing");

        assert_eq!(session.retain_query::<Sssp>("sssp", &5).unwrap(), from5);
        assert_eq!(session.retained_query::<Sssp>("sssp").unwrap(), Some(&5));
        let v3 = session.version();
        assert_eq!(session.query::<Sssp>("sssp", &0).unwrap(), from0);
        assert_eq!(session.version(), v3, "the demoted retained answer serves from cache");

        // The retained fixpoint (now 5) warm-advances; caches drop.
        let mut b = DeltaBuilder::new();
        b.add_edge(5, 40, 1);
        let report = session.apply(&b.build()).unwrap();
        assert_eq!(report.strategy("sssp"), Some(WarmStrategy::WarmDecrease));
        let v4 = session.version();
        session.query::<Sssp>("sssp", &0).unwrap();
        assert!(session.version() > v4, "post-apply, cached answers were dropped (cold re-run)");
    }

    /// Reader admission: requests queue distinct values; one
    /// `serve_admitted` answers the window and publishes.
    #[test]
    fn admitted_requests_are_served_in_one_window() {
        let g = generate::small_world(80, 2, 0.2, 9);
        let mut session =
            Session::builder(g).partition(edge_cut(2)).program("sssp", Sssp).open().unwrap();
        session.query::<Sssp>("sssp", &0).unwrap();
        let reader = session.reader();
        assert!(reader.query::<Sssp>("sssp", &3).unwrap().is_none());
        assert!(reader.request::<Sssp>("sssp", &3).unwrap());
        assert!(!reader.request::<Sssp>("sssp", &3).unwrap(), "distinct values only");
        assert!(reader.request::<Sssp>("sssp", &4).unwrap());
        assert!(reader.request::<Sssp>("sssp", &0).unwrap(), "already-served values queue too");
        assert_eq!(session.serve_admitted().unwrap(), 2, "0 was a cache hit, 3 and 4 computed");
        assert!(reader.query::<Sssp>("sssp", &3).unwrap().is_some());
        assert!(reader.query::<Sssp>("sssp", &4).unwrap().is_some());
        assert_eq!(
            session.retained_query::<Sssp>("sssp").unwrap(),
            Some(&0),
            "admission never moves the retained query"
        );
        assert_eq!(session.serve_admitted().unwrap(), 0, "window drained");
    }

    /// An always-failing log append, standing in for a full disk.
    fn failing_write(
        _log: &mut DeltaLog,
        _delta: &GraphDelta<(), u32>,
    ) -> Result<(), SnapshotError> {
        Err(DeltaLog::create("/nonexistent-aap-session-dir/never.dlog")
            .expect_err("creating a log in a nonexistent directory must fail"))
    }

    /// The LogWedged latch end to end: a failed append latches, further
    /// applies are refused (live state is ahead of the log, so logging
    /// more would let a restore silently diverge), checkpoint heals by
    /// re-baselining, and a post-heal restore lands exactly at the live
    /// state — including the delta whose append failed.
    #[test]
    fn failed_log_append_wedges_until_checkpoint() {
        let dir = std::env::temp_dir().join(format!("aap_session_wedge_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let g = generate::small_world(60, 2, 0.2, 5);
        let mut session = Session::builder(g)
            .partition(edge_cut(2))
            .program("sssp", Sssp)
            .durable(&dir)
            .unwrap()
            .open()
            .unwrap();
        session.query::<Sssp>("sssp", &0).unwrap();

        // Inject the failure and apply: the in-memory state advances,
        // the append fails, the latch sets.
        let healthy_write = session.durable.as_ref().unwrap().spec.write_delta;
        session.durable.as_mut().unwrap().spec.write_delta = failing_write;
        let mut b = DeltaBuilder::new();
        b.add_edge(0, 30, 1);
        let delta = b.build();
        let err = session.apply(&delta).expect_err("injected append failure");
        assert!(matches!(err, SessionError::Snapshot(_)), "{err}");
        let advanced = session.query::<Sssp>("sssp", &0).unwrap();

        // Wedged: further applies are refused even with a healthy log.
        session.durable.as_mut().unwrap().spec.write_delta = healthy_write;
        let mut b = DeltaBuilder::new();
        b.add_edge(0, 31, 1);
        let next = b.build();
        let err = session.apply(&next).expect_err("wedged session must refuse");
        assert!(matches!(err, SessionError::LogWedged), "{err}");
        assert_eq!(
            session.query::<Sssp>("sssp", &0).unwrap(),
            advanced,
            "a refused apply must not touch state"
        );

        // Checkpoint re-baselines (the fresh snapshot embodies the
        // unlogged delta) and clears the latch; applies resume.
        session.checkpoint().unwrap();
        session.apply(&next).unwrap();
        let served = session.query::<Sssp>("sssp", &0).unwrap();
        drop(session);

        // The healed directory restores to exactly the live state.
        let mut restored: Session<(), u32, _> =
            Session::restore(&dir).program("sssp", Sssp).open().unwrap();
        assert_eq!(restored.query::<Sssp>("sssp", &0).unwrap(), served);
        std::fs::remove_dir_all(&dir).ok();
    }
}
