//! Offline stand-in for the subset of the `parking_lot` API this workspace
//! uses, implemented over `std::sync`. The build environment has no access
//! to crates.io, so the workspace vendors this shim instead.
//!
//! Differences from the real crate: locks are slightly heavier (std's
//! poisoning bookkeeping), and a panic while holding a lock aborts the
//! poison by ignoring it (`parking_lot` has no poisoning either, so the
//! semantics match).

#![forbid(unsafe_code)]

use std::sync::PoisonError;
use std::time::Instant;

/// Mutual exclusion, `parking_lot`-style: `lock()` never returns a
/// `Result` and poisoning is ignored.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard of [`Mutex::lock`]. Holds an `Option` internally so a
/// [`Condvar`] can temporarily take the std guard during a wait.
#[derive(Debug)]
pub struct MutexGuard<'a, T> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Create a mutex.
    pub fn new(value: T) -> Self {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    /// Acquire the lock, blocking the thread until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard { inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)) }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<'a, T> std::ops::Deref for MutexGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present outside a condvar wait")
    }
}

impl<'a, T> std::ops::DerefMut for MutexGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present outside a condvar wait")
    }
}

/// Result of a timed [`Condvar`] wait.
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// True if the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Condition variable taking `&mut MutexGuard` like `parking_lot`'s.
#[derive(Debug, Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Create a condition variable.
    pub fn new() -> Self {
        Condvar { inner: std::sync::Condvar::new() }
    }

    /// Block until notified, releasing the guard's lock while parked.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard present");
        let g = self.inner.wait(g).unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
    }

    /// Block until notified or `deadline` passes.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard present");
        let timeout = deadline.saturating_duration_since(Instant::now());
        let (g, res) = self.inner.wait_timeout(g, timeout).unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
        WaitTimeoutResult { timed_out: res.timed_out() }
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn lock_and_into_inner() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn condvar_roundtrip() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut started = m.lock();
            *started = true;
            cv.notify_one();
        });
        let (m, cv) = &*pair;
        let mut started = m.lock();
        while !*started {
            cv.wait(&mut started);
        }
        h.join().unwrap();
        assert!(*started);
    }

    #[test]
    fn wait_until_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_until(&mut g, Instant::now() + Duration::from_millis(10));
        assert!(res.timed_out());
    }
}
