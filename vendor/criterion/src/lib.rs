//! Offline stand-in for the subset of the `criterion` API this workspace
//! uses. The build environment has no access to crates.io, so the
//! workspace vendors a small benchmark harness with the same surface:
//! [`Criterion::benchmark_group`], [`Bencher::iter`],
//! [`Bencher::iter_batched`], [`criterion_group!`], [`criterion_main!`].
//!
//! Methodology: each benchmark is warmed up for ~100 ms, then timed over
//! `sample_size` samples, each sample sized to run for roughly 10 ms.
//! Reported figures are the per-iteration median / mean / minimum across
//! samples. No plots, no statistical regression — just stable numbers on
//! stdout in a greppable format:
//!
//! ```text
//! bench group/name ... median 1.234 µs/iter (mean 1.301 µs, min 1.180 µs, 20 samples)
//! ```

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// How `iter_batched` amortises setup cost. The shim times each routine
/// call individually, so the variants only document intent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: many per batch in real criterion.
    SmallInput,
    /// Large inputs: few per batch.
    LargeInput,
    /// One setup per timed iteration.
    PerIteration,
}

/// Passed to benchmark closures; drives the measurement loop.
pub struct Bencher<'a> {
    samples: &'a mut Vec<f64>,
    sample_size: usize,
}

impl<'a> Bencher<'a> {
    /// Time `routine` repeatedly; the return value is black-boxed by the
    /// caller via `std::hint::black_box`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up and calibrate: how many iterations fit in ~10ms?
        let warmup_end = Instant::now() + Duration::from_millis(100);
        let mut calib_iters = 0u64;
        let calib_start = Instant::now();
        while Instant::now() < warmup_end {
            std::hint::black_box(routine());
            calib_iters += 1;
        }
        let per_iter = calib_start.elapsed().as_secs_f64() / calib_iters.max(1) as f64;
        let iters_per_sample = ((0.010 / per_iter.max(1e-9)) as u64).clamp(1, 10_000_000);
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..iters_per_sample {
                std::hint::black_box(routine());
            }
            self.samples.push(t0.elapsed().as_secs_f64() / iters_per_sample as f64);
        }
    }

    /// Caller-timed loop: `routine(iters)` runs `iters` iterations and
    /// returns the total `Duration` of the measured region only — the
    /// caller excludes its own per-iteration setup. The shim samples
    /// one iteration at a time.
    pub fn iter_custom<R: FnMut(u64) -> Duration>(&mut self, mut routine: R) {
        std::hint::black_box(routine(1)); // warm-up
        for _ in 0..self.sample_size {
            self.samples.push(routine(1).as_secs_f64());
        }
    }

    /// Time `routine` on fresh inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // Warm up once (setup + routine), then time `sample_size` runs.
        let input = setup();
        std::hint::black_box(routine(input));
        for _ in 0..self.sample_size {
            let input = setup();
            let t0 = Instant::now();
            std::hint::black_box(routine(input));
            self.samples.push(t0.elapsed().as_secs_f64());
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    sample_size: usize,
}

impl<'a> BenchmarkGroup<'a> {
    /// Number of samples per benchmark (default 20).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Run one benchmark and print its timing line.
    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(
        &mut self,
        name: impl AsRef<str>,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, name.as_ref());
        if let Some(filter) = &self.criterion.filter {
            if !full.contains(filter.as_str()) {
                return self;
            }
        }
        let mut samples: Vec<f64> = Vec::new();
        let mut b = Bencher { samples: &mut samples, sample_size: self.sample_size };
        f(&mut b);
        report(&full, &mut samples);
        self
    }

    /// End the group (formatting no-op; kept for API compatibility).
    pub fn finish(self) {}
}

fn report(name: &str, samples: &mut [f64]) {
    if samples.is_empty() {
        println!("bench {name} ... no samples");
        return;
    }
    samples.sort_unstable_by(|a, b| a.total_cmp(b));
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let min = samples[0];
    println!(
        "bench {name} ... median {} /iter (mean {}, min {}, {} samples)",
        human(median),
        human(mean),
        human(min),
        samples.len()
    );
}

fn human(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.1} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.3} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.3} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

/// Benchmark driver; one per `criterion_group!` function list.
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // Cargo invokes bench binaries as `<bin> --bench [filter]`; a bare
        // positional argument filters benchmark names, matching criterion.
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            if arg.starts_with('-') {
                continue;
            }
            filter = Some(arg);
        }
        Criterion { filter }
    }
}

impl Criterion {
    /// Start a named group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.to_string(), sample_size: 20 }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(
        &mut self,
        name: impl AsRef<str>,
        f: F,
    ) -> &mut Self {
        let mut g = BenchmarkGroup { criterion: self, name: "bench".to_string(), sample_size: 20 };
        g.bench_function(name, f);
        self
    }
}

/// Define a function running a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Define `main` for a bench binary (`harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test --benches` runs bench binaries with `--test`:
            // compile-check only, skip the (slow) measurements.
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_reports() {
        let mut c = Criterion { filter: None };
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.bench_function("noop", |b| b.iter(|| 1 + 1));
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u64; 16], |v| v.iter().sum::<u64>(), BatchSize::SmallInput)
        });
        group.bench_function("custom", |b| {
            b.iter_custom(|iters| {
                let t0 = Instant::now();
                for _ in 0..iters {
                    std::hint::black_box(1 + 1);
                }
                t0.elapsed()
            })
        });
        group.finish();
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion { filter: Some("only_this".into()) };
        let mut group = c.benchmark_group("shim");
        group.bench_function("skipped", |_b| panic!("must not run"));
        group.finish();
    }
}
