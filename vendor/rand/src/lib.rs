//! Offline stand-in for the subset of the `rand` 0.8 API this workspace
//! uses. The build environment has no access to crates.io, so the
//! workspace vendors a minimal, deterministic implementation instead:
//!
//! * [`rngs::SmallRng`] — a small, fast PRNG (xorshift128+, seeded through
//!   SplitMix64);
//! * [`SeedableRng::seed_from_u64`];
//! * [`Rng::gen`] for the primitive types we sample;
//! * [`Rng::gen_range`] over half-open and inclusive integer/float ranges;
//! * [`Rng::gen_bool`].
//!
//! The streams are stable across runs and platforms — workload generators
//! rely on that for reproducible graphs — but make no statistical-quality
//! claims beyond "good enough for synthetic workloads".

#![forbid(unsafe_code)]

/// Low-level source of randomness: everything derives from `next_u64`.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Build an RNG from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// SplitMix64 step: used to expand seeds and as a stream finalizer.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Named RNGs.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// A small, fast, non-cryptographic PRNG (xorshift128+).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s0: u64,
        s1: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s0 = splitmix64(&mut sm);
            let s1 = splitmix64(&mut sm);
            // xorshift must not start at the all-zero state.
            SmallRng { s0: s0 | 1, s1 }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let mut x = self.s0;
            let y = self.s1;
            self.s0 = y;
            x ^= x << 23;
            self.s1 = x ^ y ^ (x >> 17) ^ (y >> 26);
            self.s1.wrapping_add(y)
        }
    }
}

/// Types sampleable uniformly over their whole domain via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 mantissa bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draw one value from the range (panics on an empty range).
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit = <$t as Standard>::sample(rng);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let unit = <$t as Standard>::sample(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}
float_range!(f32, f64);

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore + Sized {
    /// Sample a value uniformly over the type's domain.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from a range.
    #[inline]
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Bernoulli trial with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(1..=100);
            assert!((1..=100).contains(&y));
            let f: f32 = rng.gen_range(0.2f32..1.0);
            assert!((0.2..1.0).contains(&f));
            let n: f32 = rng.gen_range(-0.1f32..0.1);
            assert!((-0.1..0.1).contains(&n));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn rough_uniformity() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut buckets = [0u32; 10];
        for _ in 0..10_000 {
            buckets[rng.gen_range(0..10usize)] += 1;
        }
        for &b in &buckets {
            assert!((600..1400).contains(&b), "{buckets:?}");
        }
    }
}
