//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy for `Vec<S::Value>` with a length drawn from `len`.
pub struct VecStrategy<S> {
    element: S,
    min: usize,
    max: usize, // exclusive
}

/// `vec(element, 0..10)`: vectors of 0 to 9 elements.
pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
    assert!(len.start < len.end, "empty length range");
    VecStrategy { element, min: len.start, max: len.end }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.max - self.min) as u64;
        let n = self.min + rng.below(span.max(1)) as usize;
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}
