//! The [`Strategy`] trait and the combinators this workspace uses.

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Type-erased strategy, used by [`crate::prop_oneof!`].
pub struct BoxedStrategy<V> {
    gen_fn: Box<dyn Fn(&mut TestRng) -> V>,
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (self.gen_fn)(rng)
    }
}

/// Erase a strategy's concrete type.
pub fn boxed<S: Strategy + 'static>(s: S) -> BoxedStrategy<S::Value> {
    BoxedStrategy { gen_fn: Box::new(move |rng| s.generate(rng)) }
}

/// Uniform choice among same-valued strategies.
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Build from at least one option.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}
float_strategy!(f32, f64);

/// String pattern (tiny regex subset); see [`crate::string`].
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate(self, rng)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($( self.$idx.generate(rng), )+)
            }
        }
    )*};
}
tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}
