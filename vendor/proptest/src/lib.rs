//! Offline stand-in for the subset of the `proptest` API this workspace
//! uses. The build environment has no access to crates.io, so the
//! workspace vendors a small property-testing harness with the same
//! surface: the [`proptest!`] macro, [`strategy::Strategy`] with `prop_map`,
//! numeric-range and tuple strategies, [`collection::vec`], simple
//! string-pattern strategies, [`prop_oneof!`], and the `prop_assert*`
//! macros.
//!
//! Differences from the real crate: cases are generated from a fixed
//! deterministic seed sequence (reproducible, CI-stable), and failing
//! inputs are *not* shrunk — the panic message carries the case number so
//! a failure can be replayed under a debugger by running the same test.

#![forbid(unsafe_code)]

pub mod strategy;

pub mod collection;

pub mod string;

pub mod test_runner;

/// Run configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
    /// Accepted for compatibility; shrinking is not implemented.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256, max_shrink_iters: 0 }
    }
}

/// Most-used items, mirroring `proptest::prelude`.
pub mod prelude {
    /// Module alias so `prop::collection::vec(...)` resolves.
    pub use crate as prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{TestCaseError, TestRng};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Assert inside a property; failure aborts the current case with context.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// `prop_assert!(a == b)` with a diff-style message.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, "assertion failed: {:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, $($fmt)*);
    }};
}

/// `prop_assert!(a != b)` with a diff-style message.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a != *b, "assertion failed: both sides equal {:?}", a);
    }};
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::boxed($strat) ),+
        ])
    };
}

/// Define property tests. Supports the standard shape:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]
///     #[test]
///     fn my_property(x in 0usize..10, y in arb_thing()) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $(
            $(#[$meta:meta])+
            fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases as u64 {
                    let mut rng = $crate::test_runner::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);
                    )*
                    let result: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body Ok(()) })();
                    if let ::core::result::Result::Err(e) = result {
                        panic!(
                            "property {} failed at case {}: {}",
                            stringify!($name), case, e
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_pair() -> impl Strategy<Value = (usize, usize)> {
        (1usize..50, 1usize..50)
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        #[test]
        fn ranges_in_bounds(x in 3usize..17, y in -5i64..5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-5..5).contains(&y));
        }

        #[test]
        fn map_and_tuple(p in arb_pair().prop_map(|(a, b)| a + b)) {
            prop_assert!((2..100).contains(&p));
        }

        #[test]
        fn oneof_picks_both(v in prop_oneof![0usize..1, 10usize..11]) {
            prop_assert!(v == 0 || v == 10);
        }

        #[test]
        fn vec_and_string(xs in prop::collection::vec(-3i64..3, 0..9),
                          s in "[ab]{2,4}") {
            prop_assert!(xs.len() < 9);
            prop_assert!((2..=4).contains(&s.len()));
            prop_assert!(s.chars().all(|c| c == 'a' || c == 'b'));
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(x in 0u32..5) {
            prop_assert!(x < 5);
        }
    }
}
