//! Deterministic RNG and error type driving the [`crate::proptest!`] macro.

/// Why a property case failed.
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failed assertion with a message.
    pub fn fail(message: String) -> Self {
        TestCaseError { message }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// Deterministic per-case RNG (SplitMix64 core).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for case `case` of the named test: stable across runs and
    /// platforms, distinct across tests.
    pub fn for_case(test_name: &str, case: u64) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15) }
    }

    /// Next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`; `bound` must be nonzero.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Uniform float in `[0, 1)`.
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
