//! String generation from a tiny regex subset.
//!
//! Supported syntax — enough for the patterns in this workspace's tests:
//!
//! * literal characters;
//! * character classes `[abc]` and ranges inside them `[a-c ]`;
//! * a repetition suffix `{m,n}` (inclusive bounds) or `{m}` on the
//!   previous atom.
//!
//! Anything else panics loudly so an unsupported pattern is caught at the
//! first test run rather than silently mis-generating.

use crate::test_runner::TestRng;

enum Atom {
    Class(Vec<char>),
    Literal(char),
}

struct Piece {
    atom: Atom,
    min: usize,
    max: usize, // inclusive
}

fn parse(pattern: &str) -> Vec<Piece> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut pieces = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let atom = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .unwrap_or_else(|| panic!("unclosed [ in pattern {pattern:?}"))
                    + i;
                let mut set = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        let (lo, hi) = (chars[j], chars[j + 2]);
                        assert!(lo <= hi, "bad range {lo}-{hi} in {pattern:?}");
                        for c in lo..=hi {
                            set.push(c);
                        }
                        j += 3;
                    } else {
                        set.push(chars[j]);
                        j += 1;
                    }
                }
                assert!(!set.is_empty(), "empty class in {pattern:?}");
                i = close + 1;
                Atom::Class(set)
            }
            '{' | '}' | ']' => panic!("unsupported pattern syntax at {i} in {pattern:?}"),
            c => {
                i += 1;
                Atom::Literal(c)
            }
        };
        // Optional {m,n} / {m} repetition.
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("unclosed {{ in pattern {pattern:?}"))
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            let (m, n) = match body.split_once(',') {
                Some((m, n)) => (
                    m.parse().unwrap_or_else(|_| panic!("bad bound in {pattern:?}")),
                    n.parse().unwrap_or_else(|_| panic!("bad bound in {pattern:?}")),
                ),
                None => {
                    let m = body.parse().unwrap_or_else(|_| panic!("bad bound in {pattern:?}"));
                    (m, m)
                }
            };
            assert!(m <= n, "inverted bounds in {pattern:?}");
            i = close + 1;
            (m, n)
        } else {
            (1, 1)
        };
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

/// Generate one string matching `pattern`.
pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    for piece in parse(pattern) {
        let span = (piece.max - piece.min + 1) as u64;
        let n = piece.min + rng.below(span) as usize;
        for _ in 0..n {
            match &piece.atom {
                Atom::Literal(c) => out.push(*c),
                Atom::Class(set) => out.push(set[rng.below(set.len() as u64) as usize]),
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn class_with_repetition() {
        let mut rng = TestRng::for_case("string", 0);
        for _ in 0..200 {
            let s = generate("[a-c ]{0,24}", &mut rng);
            assert!(s.len() <= 24);
            assert!(s.chars().all(|c| ('a'..='c').contains(&c) || c == ' '));
        }
    }

    #[test]
    fn literals_and_fixed_repeat() {
        let mut rng = TestRng::for_case("string", 1);
        assert_eq!(generate("xy", &mut rng), "xy");
        assert_eq!(generate("x{3}", &mut rng), "xxx");
    }
}
