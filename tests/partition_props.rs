//! Property tests of the partitioning substrate: the invariants every
//! fragment set must satisfy regardless of strategy.

use grape_aap::graph::partition::{
    build_fragments_n, build_fragments_vertex_cut, hash_partition, ldg_partition, skewed_partition,
    vertex_cut_partition,
};
use grape_aap::graph::{generate, Graph, Route};
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = Graph<(), u32>> {
    prop_oneof![
        (10usize..120, 2usize..10, 0u64..100).prop_map(|(n, ef, s)| generate::uniform(
            n,
            n * ef,
            true,
            s
        )),
        (10usize..120, 1usize..3, 0u64..100).prop_map(|(n, k, s)| generate::small_world(
            n,
            k.min(n - 1).max(1),
            0.3,
            s
        )),
    ]
}

fn check_edge_cut_invariants(g: &Graph<(), u32>, m: usize, assignment: &[u16]) {
    let frags = build_fragments_n(g, assignment, m);
    // 1. Ownership partitions V.
    let mut owner = vec![u16::MAX; g.num_vertices()];
    for f in &frags {
        for l in f.owned_vertices() {
            let gid = f.global(l) as usize;
            assert_eq!(owner[gid], u16::MAX, "vertex owned twice");
            owner[gid] = f.id();
        }
    }
    assert!(owner.iter().all(|&o| o != u16::MAX));
    // 2. Every stored edge appears exactly once, at its source's owner.
    let total: usize = frags.iter().map(|f| f.edge_count()).sum();
    assert_eq!(total, g.num_edges());
    // 3. Mirror owners are correct and mirrors have no out-edges.
    for f in &frags {
        for mch in f.mirrors() {
            let gid = f.global(mch);
            assert_eq!(f.owner(mch), owner[gid as usize]);
            assert!(f.neighbors(mch).is_empty());
        }
        // 4. Routing symmetry: v's mirror at f implies f ∈ holders(v) at the owner.
        for mch in f.mirrors() {
            let gid = f.global(mch);
            let of = &frags[owner[gid as usize] as usize];
            let lo = of.local(gid).expect("owner has the vertex");
            assert!(
                of.mirror_holders(lo).contains(&f.id()),
                "owner of {gid} must list {} as holder",
                f.id()
            );
            match f.route(mch) {
                Route::Owner(o) => assert_eq!(o, of.id()),
                Route::Mirrors(_) => panic!("mirror must route to owner"),
            }
        }
        // 5. inner_in/inner_out are owned and sorted.
        for set in [f.inner_in(), f.inner_out()] {
            assert!(set.windows(2).all(|w| w[0] < w[1]));
            assert!(set.iter().all(|&l| f.is_owned(l)));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn edge_cut_invariants_hold_for_hash(g in arb_graph(), m in 1usize..9) {
        check_edge_cut_invariants(&g, m, &hash_partition(&g, m));
    }

    #[test]
    fn edge_cut_invariants_hold_for_ldg(g in arb_graph(), m in 1usize..9) {
        check_edge_cut_invariants(&g, m, &ldg_partition(&g, m, 1.3));
    }

    #[test]
    fn edge_cut_invariants_hold_for_skewed(g in arb_graph(), m in 2usize..9, s in 1u32..8) {
        check_edge_cut_invariants(&g, m, &skewed_partition(&g, m, s as f64));
    }

    #[test]
    fn vertex_cut_invariants(g in arb_graph(), m in 1usize..8) {
        let ea = vertex_cut_partition(&g, m);
        let frags = build_fragments_vertex_cut(&g, &ea);
        // edges partitioned
        let total: usize = frags.iter().map(|f| f.edge_count()).sum();
        prop_assert_eq!(total, g.num_edges());
        // each vertex owned exactly once
        let mut owned = vec![0u32; g.num_vertices()];
        for f in &frags {
            prop_assert!(f.is_vertex_cut());
            for l in f.owned_vertices() {
                owned[f.global(l) as usize] += 1;
            }
        }
        prop_assert!(owned.iter().all(|&c| c == 1));
        // copies route to owners that list them back
        for f in &frags {
            for l in f.mirrors() {
                let gid = f.global(l);
                match f.route(l) {
                    Route::Owner(o) => {
                        let of = &frags[o as usize];
                        let lo = of.local(gid).unwrap();
                        prop_assert!(of.mirror_holders(lo).contains(&f.id()));
                    }
                    Route::Mirrors(_) => prop_assert!(false, "copy must route to owner"),
                }
            }
        }
    }

    #[test]
    fn partition_stats_consistent(g in arb_graph(), m in 1usize..8) {
        let frags = build_fragments_n(&g, &hash_partition(&g, m), m);
        let stats = grape_aap::graph::fragment::partition_stats(&frags);
        prop_assert_eq!(stats.owned.iter().sum::<usize>(), g.num_vertices());
        prop_assert_eq!(stats.edges.iter().sum::<usize>(), g.num_edges());
        prop_assert!(stats.replication_factor >= 1.0);
        prop_assert!(stats.skew_r >= 1.0);
    }
}
