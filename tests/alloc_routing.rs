//! Proof of the zero-allocation steady state: drive the dense routing and
//! drain path through many rounds under a counting global allocator and
//! assert that, once warm, **no heap allocation happens at all** in
//! route + deliver + drain — the acceptance bar for the scratch-buffer
//! subsystem (`aap_core::scratch`).

use grape_aap::graph::partition::{build_fragments, hash_partition};
use grape_aap::graph::{generate, Fragment};
use grape_aap::prelude::*;
use grape_aap::runtime::inbox::Inbox;
use grape_aap::runtime::pie::route_updates_into;
use grape_aap::runtime::Scratch;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates verbatim to the system allocator; the counter is a
// relaxed atomic with no further invariants.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

struct MinProg;

impl PieProgram<(), u32> for MinProg {
    type Query = ();
    type Val = u64;
    type State = ();
    type Out = ();

    fn combine(&self, a: &mut u64, b: u64) -> bool {
        if b < *a {
            *a = b;
            true
        } else {
            false
        }
    }

    fn peval(&self, _: &(), _: &Fragment<(), u32>, _: &mut UpdateCtx<u64>) {}

    fn inceval(
        &self,
        _: &(),
        _: &Fragment<(), u32>,
        _: &mut (),
        _: &mut Messages<u64>,
        _: &mut UpdateCtx<u64>,
    ) {
    }

    fn assemble(&self, _: &(), _: &[Arc<Fragment<(), u32>>], _: Vec<()>) {}
}

#[test]
fn steady_state_route_and_drain_allocate_nothing() {
    let g = generate::small_world(2_000, 3, 0.2, 7);
    let m = 4usize;
    let frags = build_fragments(&g, &hash_partition(&g, m));
    let mut scratches: Vec<Scratch<u64>> = (0..m).map(|_| Scratch::default()).collect();
    let mut inboxes: Vec<Inbox<u64>> = (0..m).map(|_| Inbox::default()).collect();
    // Per-fragment update template: every border vertex announces a value
    // (symmetric traffic, so every worker's batch-vector pool reaches the
    // sender/receiver equilibrium the engines rely on).
    let templates: Vec<Vec<(LocalId, u64)>> = frags
        .iter()
        .map(|f| {
            f.local_vertices()
                .filter(|&l| f.routing().fanout_len(l) > 0)
                .map(|l| (l, f.global(l) as u64))
                .collect()
        })
        .collect();
    assert!(templates.iter().any(|t| !t.is_empty()), "graph must have cut edges");

    let mut updates: Vec<Vec<(LocalId, u64)>> = vec![Vec::new(); m];
    let mut outs: Vec<Vec<(FragId, _)>> = (0..m).map(|_| Vec::new()).collect();

    let one_round = |round: u32,
                     scratches: &mut Vec<Scratch<u64>>,
                     inboxes: &mut Vec<Inbox<u64>>,
                     updates: &mut Vec<Vec<(LocalId, u64)>>,
                     outs: &mut Vec<Vec<(FragId, _)>>| {
        for i in 0..m {
            updates[i].extend_from_slice(&templates[i]);
            route_updates_into(
                &MinProg,
                &frags[i],
                round,
                &mut updates[i],
                &mut scratches[i],
                &mut outs[i],
            );
            for (dst, batch) in outs[i].drain(..) {
                inboxes[dst as usize].push(batch);
            }
        }
        for j in 0..m {
            // `drain_into` recycles delivered batch bodies into worker j's
            // pool; the next round's sends take them back out.
            let (inbox, scratch) = (&mut inboxes[j], &mut scratches[j]);
            let _info = inbox.drain_into(&MinProg, &frags[j], scratch);
        }
    };

    // Warm-up: grow every buffer to its steady-state size.
    for round in 0..8 {
        one_round(round, &mut scratches, &mut inboxes, &mut updates, &mut outs);
    }

    let grow_before: u64 = scratches.iter().map(|s| s.grow_events()).sum();
    let allocs_before = ALLOCS.load(Ordering::Relaxed);
    for round in 8..64 {
        one_round(round, &mut scratches, &mut inboxes, &mut updates, &mut outs);
    }
    let allocs_after = ALLOCS.load(Ordering::Relaxed);
    let grow_after: u64 = scratches.iter().map(|s| s.grow_events()).sum();

    assert_eq!(allocs_after - allocs_before, 0, "steady-state routing/drain hit the allocator");
    assert_eq!(grow_after, grow_before, "scratch buffers grew after warm-up");
}

/// Asymmetric traffic: with a directed cut, one worker only sends and the
/// other only receives, so the sender's local pool never refills from its
/// own drains. The engine-wide shared pool must circulate the batch bodies
/// back; steady state still allocates nothing.
#[test]
fn one_way_traffic_allocates_nothing_via_shared_pool() {
    use grape_aap::graph::GraphBuilder;
    use grape_aap::runtime::scratch::SharedPool;

    // Directed path 0 -> 1 -> ... -> 999, split in the middle: only
    // fragment 0 has a mirror (of vertex 500), so messages flow 0 -> 1
    // exclusively.
    let n = 1000u32;
    let mut b = GraphBuilder::new_directed(n as usize);
    for v in 0..n - 1 {
        b.add_edge(v, v + 1, 1u32);
    }
    let g = b.build();
    let assignment: Vec<u16> = (0..n).map(|v| u16::from(v >= 500)).collect();
    let frags = build_fragments(&g, &assignment);
    assert!(frags[0].mirror_count() > 0);
    assert_eq!(frags[1].mirror_count(), 0, "traffic must be one-way");

    let shared: SharedPool<u64> = SharedPool::default();
    let mut scratches: Vec<Scratch<u64>> = (0..2).map(|_| Scratch::default()).collect();
    for s in &mut scratches {
        s.attach_shared_pool(shared.clone());
    }
    let mut inbox1: Inbox<u64> = Inbox::default();
    let template: Vec<(LocalId, u64)> = frags[0]
        .local_vertices()
        .filter(|&l| frags[0].routing().fanout_len(l) > 0)
        .map(|l| (l, frags[0].global(l) as u64))
        .collect();
    assert!(!template.is_empty());

    let mut updates: Vec<(LocalId, u64)> = Vec::new();
    let mut out = Vec::new();
    let one_round = |round: u32,
                     scratches: &mut Vec<Scratch<u64>>,
                     inbox1: &mut Inbox<u64>,
                     updates: &mut Vec<(LocalId, u64)>,
                     out: &mut Vec<(FragId, _)>| {
        updates.extend_from_slice(&template);
        route_updates_into(&MinProg, &frags[0], round, updates, &mut scratches[0], out);
        for (dst, batch) in out.drain(..) {
            assert_eq!(dst, 1);
            inbox1.push(batch);
        }
        let _ = inbox1.drain_into(&MinProg, &frags[1], &mut scratches[1]);
    };

    for round in 0..8 {
        one_round(round, &mut scratches, &mut inbox1, &mut updates, &mut out);
    }
    let allocs_before = ALLOCS.load(Ordering::Relaxed);
    for round in 8..64 {
        one_round(round, &mut scratches, &mut inbox1, &mut updates, &mut out);
    }
    let allocs_after = ALLOCS.load(Ordering::Relaxed);
    assert_eq!(
        allocs_after - allocs_before,
        0,
        "one-way steady state hit the allocator (shared pool not circulating)"
    );
}
