//! `EditBuffers` capacity retention (ISSUE 6 satellite): streaming many
//! small delta batches through the in-place apply path must reach an
//! allocation steady state — after warm-up, every batch performs the
//! same, small number of heap allocations (the returned [`AppliedEdit`]
//! vectors and nothing else on the weight-only fast path), because the
//! scratch sets live in the pooled [`EditBuffers`] and retain their
//! capacity across batches. Mirrors the counting-allocator pattern of
//! `tests/alloc_routing.rs`.
//!
//! [`AppliedEdit`]: grape_aap::graph::mutate::AppliedEdit

use grape_aap::graph::mutate::{apply_partition_edit, EditBuffers, FragmentEdit, PartitionEdit};
use grape_aap::graph::partition::{build_fragments_n, hash_partition};
use grape_aap::graph::{generate, Fragment, FxHashMap, FxHashSet};
use grape_aap::prelude::*;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates verbatim to the system allocator; the counter is a
// relaxed atomic with no further invariants.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

const M: usize = 4;

fn fragments() -> Vec<Fragment<(), u32>> {
    let g = generate::small_world(800, 3, 0.2, 7);
    build_fragments_n(&g, &hash_partition(&g, M), M)
}

/// A weight-only edit naming a handful of stored edges in fragment 0,
/// alternating between two weight values so every batch really patches.
fn weight_edit(frags: &[Fragment<(), u32>], w: u32) -> PartitionEdit<(), u32> {
    let f = &frags[0];
    let mut edits: Vec<FragmentEdit<(), u32>> = (0..M).map(|_| FragmentEdit::default()).collect();
    let mut owners: FxHashMap<VertexId, u16> = FxHashMap::default();
    let mut named = 0;
    'outer: for l in f.local_vertices() {
        for &t in f.neighbors(l) {
            let (u, v) = (f.global(l), f.global(t));
            edits[0].set_weights.push((u, v, w));
            owners.insert(u, 0);
            owners.insert(v, 0);
            named += 1;
            if named == 8 {
                break 'outer;
            }
        }
    }
    assert_eq!(named, 8, "graph must have stored edges in fragment 0");
    let mut touched = vec![false; M];
    touched[0] = true;
    PartitionEdit { frags: edits, removed_vertices: FxHashSet::default(), owners, touched }
}

/// The weight-only fast path: after warm-up, every batch allocates the
/// same small count — exactly the returned `AppliedEdit` (remaps vector,
/// seeds vectors), never the scratch sets, which live in the pooled
/// `EditBuffers` and keep their capacity.
#[test]
fn weight_only_stream_reaches_a_small_constant_allocation_per_batch() {
    let mut frags = fragments();
    let lo = weight_edit(&frags, 1);
    let hi = weight_edit(&frags, 9);
    let mut bufs = EditBuffers::default();

    let mut run_batch = |bufs: &mut EditBuffers, round: usize| {
        let edit = if round.is_multiple_of(2) { &lo } else { &hi };
        let mut refs: Vec<&mut Fragment<(), u32>> = frags.iter_mut().collect();
        let applied = apply_partition_edit(&mut refs, edit, bufs);
        assert!(applied.remaps.iter().all(|r| r.is_identity()));
    };

    for round in 0..8 {
        run_batch(&mut bufs, round);
    }
    let a = ALLOCS.load(Ordering::Relaxed);
    for round in 8..24 {
        run_batch(&mut bufs, round);
    }
    let b = ALLOCS.load(Ordering::Relaxed);
    for round in 24..40 {
        run_batch(&mut bufs, round);
    }
    let c = ALLOCS.load(Ordering::Relaxed);

    assert_eq!(b - a, c - b, "steady-state windows must allocate identically");
    let per_batch = (b - a) / 16;
    // The returned AppliedEdit: one remaps Vec, one seeds outer Vec, one
    // non-empty inner seeds Vec (+ possible growth doubling) — anything
    // beyond ~8 means scratch state leaked out of the pool.
    assert!(per_batch <= 8, "weight-only batch allocated {per_batch} times; pool not retained");
}

/// Structural batches (insert + remove, CSR repack) through the full
/// delta layer: the repack itself must allocate (fresh CSR vectors, the
/// returned remaps/seeds), but the *scratch* allocation is pooled, so
/// after warm-up every window allocates identically — and a stream that
/// throws its `EditBuffers` away every batch pays strictly more.
#[test]
fn structural_stream_retains_scratch_capacity_across_batches() {
    use grape_aap::delta::apply::apply_to_fragments_with;

    let mut frags = fragments();
    let probe = {
        // An edge between two vertices owned by different fragments, so
        // the batch touches two fragments' CSRs every round.
        let f0 = &frags[0];
        let u = f0.global(f0.local_vertices().next().unwrap());
        let f1 = &frags[1];
        let v = f1.global(f1.local_vertices().next().unwrap());
        (u, v)
    };
    let add = {
        let mut b = DeltaBuilder::new();
        b.add_edge(probe.0, probe.1, 3u32);
        b.build()
    };
    let del = {
        let mut b = DeltaBuilder::new();
        b.remove_edge(probe.0, probe.1);
        b.build()
    };

    let mut run_batch = |bufs: &mut EditBuffers, round: usize| {
        let delta = if round.is_multiple_of(2) { &add } else { &del };
        let mut refs: Vec<&mut Fragment<(), u32>> = frags.iter_mut().collect();
        apply_to_fragments_with(&mut refs, delta, bufs);
    };

    // Pooled: warm up, then two measurement windows.
    let mut bufs = EditBuffers::default();
    for round in 0..8 {
        run_batch(&mut bufs, round);
    }
    let a = ALLOCS.load(Ordering::Relaxed);
    for round in 8..24 {
        run_batch(&mut bufs, round);
    }
    let b = ALLOCS.load(Ordering::Relaxed);
    for round in 24..40 {
        run_batch(&mut bufs, round);
    }
    let c = ALLOCS.load(Ordering::Relaxed);
    assert_eq!(b - a, c - b, "steady-state structural windows must allocate identically");

    // Throwaway buffers: same batches, fresh scratch every round.
    let d = ALLOCS.load(Ordering::Relaxed);
    for round in 8..24 {
        let mut fresh = EditBuffers::default();
        run_batch(&mut fresh, round);
    }
    let e = ALLOCS.load(Ordering::Relaxed);
    assert!(
        e - d > b - a,
        "throwaway EditBuffers ({}) should out-allocate the pooled stream ({})",
        e - d,
        b - a
    );
}
