//! Concurrent serving stress (ISSUE 6): K reader threads hammer
//! [`SessionReader`] handles while the single writer streams delta
//! batches through `apply()`. Every read must observe a *complete*
//! epoch-consistent fixpoint — byte-equal to the serial reference
//! output of some pre- or post-apply state, never a torn mix — with
//! per-reader monotone versions, and the final state must equal the
//! from-scratch serial reference.

use aap_testkit::adversarial_stream;
use grape_aap::graph::generate;
use grape_aap::prelude::*;

/// Serial reference: the exact SSSP answer after each batch prefix,
/// computed from scratch on independently re-applied graphs.
fn reference_outputs(
    g: &Graph<(), u32>,
    deltas: &[GraphDelta<(), u32>],
    src: u32,
) -> Vec<Vec<u64>> {
    let mut outs = Vec::with_capacity(deltas.len() + 1);
    let mut cur = g.clone();
    let cold = |g: &Graph<(), u32>| {
        let mut s = Session::builder(g.clone())
            .partition(edge_cut(4))
            .program("sssp", Sssp)
            .open()
            .unwrap();
        s.query::<Sssp>("sssp", &src).unwrap()
    };
    outs.push(cold(&cur));
    for d in deltas {
        cur = grape_aap::delta::apply_to_graph(&cur, d);
        outs.push(cold(&cur));
    }
    outs
}

/// `seq` must be a subsequence of `expected` (readers can skip epochs,
/// but every observed value must be exactly one published fixpoint, in
/// publication order).
fn assert_subsequence(seq: &[Vec<u64>], expected: &[Vec<u64>], reader: usize) {
    let mut at = 0;
    for (i, obs) in seq.iter().enumerate() {
        match expected[at..].iter().position(|e| e == obs) {
            Some(p) => at += p,
            None => panic!(
                "reader {reader}: observation {i} of {} matches no published fixpoint \
                 at or after reference state {at} — torn or out-of-order read",
                seq.len()
            ),
        }
    }
}

#[test]
fn concurrent_reads_observe_complete_epoch_consistent_fixpoints() {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    const READERS: usize = 4;
    const SRC: u32 = 0;
    let g = generate::small_world(240, 3, 0.15, 11);
    let deltas = adversarial_stream(&g, 6, 0xC0C0);
    let expected = reference_outputs(&g, &deltas, SRC);

    let mut session = Session::builder(g)
        .partition(edge_cut(4))
        .program("sssp", Sssp)
        .program("cc", ConnectedComponents)
        .open()
        .unwrap();
    session.query::<Sssp>("sssp", &SRC).unwrap();
    session.query::<ConnectedComponents>("cc", &()).unwrap();

    let readers: Vec<_> = (0..READERS).map(|_| session.reader()).collect();
    let stop = Arc::new(AtomicBool::new(false));
    let n_vertices = expected[0].len();

    let observed: Vec<Vec<Vec<u64>>> = std::thread::scope(|s| {
        let handles: Vec<_> = readers
            .into_iter()
            .enumerate()
            .map(|(k, reader)| {
                let stop = Arc::clone(&stop);
                s.spawn(move || {
                    let mut seen: Vec<Vec<u64>> = Vec::new();
                    let mut last_version = 0;
                    let mut reads = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        let v = reader.version("sssp").unwrap().unwrap_or(0);
                        assert!(
                            v >= last_version,
                            "reader {k}: version went backwards ({last_version} -> {v})"
                        );
                        last_version = v;
                        // `query` for the retained value and `output`
                        // walk the same published fix.
                        let out = match reads % 2 {
                            0 => reader.query::<Sssp>("sssp", &SRC).unwrap(),
                            _ => reader.output::<Sssp>("sssp").unwrap(),
                        };
                        if let Some(out) = out {
                            if seen.last() != Some(&*out) {
                                seen.push((*out).clone());
                            }
                        }
                        // Unseen values read as None (never a panic, never
                        // garbage); enqueue one for admission now and then.
                        // Deltas add/remove vertices, so a served answer's
                        // length is "some complete assembly", not a fixed n.
                        assert!(reader
                            .query::<Sssp>("sssp", &(SRC + 1 + k as u32))
                            .unwrap()
                            .map(|o| o.len() >= n_vertices / 2)
                            .unwrap_or(true));
                        reader.request::<Sssp>("sssp", &(SRC + 1 + k as u32)).unwrap();
                        reads += 1;
                        std::thread::yield_now();
                    }
                    seen
                })
            })
            .collect();

        // The single writer: admit reader-requested queries, then stream
        // the mutating batches, republishing after every apply.
        session.serve_admitted().unwrap();
        for d in &deltas {
            session.apply(d).unwrap();
            session.serve_admitted().unwrap();
            std::thread::yield_now();
        }
        stop.store(true, Ordering::Relaxed);
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // Final state equals the serial reference ...
    let last = expected.last().unwrap();
    assert_eq!(&session.query::<Sssp>("sssp", &SRC).unwrap(), last, "final state diverged");

    // ... and every concurrent observation was a complete published
    // fixpoint, observed in publication order.
    for (k, seen) in observed.iter().enumerate() {
        assert!(!seen.is_empty(), "reader {k} never observed a fixpoint");
        assert_subsequence(seen, &expected, k);
    }
}

/// The reader handle works across an apply even when created before the
/// writer's first publication, and a clone made mid-stream converges.
#[test]
fn readers_created_early_and_cloned_late_converge() {
    let g = generate::small_world(120, 2, 0.2, 7);
    let mut session =
        Session::builder(g).partition(edge_cut(3)).program("sssp", Sssp).open().unwrap();
    let early = session.reader();
    assert!(early.query::<Sssp>("sssp", &0).unwrap().is_none(), "nothing published yet");
    assert_eq!(early.version("sssp").unwrap(), None);

    let first = session.query::<Sssp>("sssp", &0).unwrap();
    assert_eq!(early.query::<Sssp>("sssp", &0).unwrap().as_deref(), Some(&first));

    let mut b = DeltaBuilder::new();
    b.add_edge(0, 60, 1);
    session.apply(&b.build()).unwrap();
    let advanced = session.query::<Sssp>("sssp", &0).unwrap();
    let late = early.clone();
    assert_eq!(late.query::<Sssp>("sssp", &0).unwrap().as_deref(), Some(&advanced));
    assert_eq!(early.query::<Sssp>("sssp", &0).unwrap().as_deref(), Some(&advanced));
    assert!(late.version("sssp").unwrap().unwrap() >= 2);
}
