//! Elastic-rebalancing equivalence (ISSUE 10 acceptance): migrating
//! ownership in place must be **semantically invisible**. After a
//! skewed delta stream, `rebalance()` followed by (warm) serving must
//! agree with a full re-partition of the final graph followed by a
//! cold run — identical fixpoints for SSSP and CC, across both
//! partition kinds and all five execution modes, including under
//! hostile [`ScheduleFuzz`] schedules. Durability interplay: a
//! rebalance is never logged, so a "kill" before the next checkpoint
//! restores the consistent pre-plan state and a kill after it the
//! post-plan one — both serving the same answers.

use aap_testkit::{
    all_modes, arb_graph, build_parts, cases, fuzz_opts, fuzz_seeds, scratch_dir, skewed_stream,
    PartitionKind, PARTITIONS,
};
use grape_aap::delta::apply_to_graph;
use grape_aap::prelude::*;
use proptest::prelude::*;

const FRAGS: usize = 3;

fn partition_spec(kind: PartitionKind) -> grape_aap::session::PartitionSpec {
    match kind {
        PartitionKind::EdgeCut => edge_cut(FRAGS),
        PartitionKind::VertexCut => vertex_cut(FRAGS),
    }
}

fn balanced_session(
    g: &Graph<(), u32>,
    kind: PartitionKind,
    mode: Mode,
) -> Session<(), u32, grape_aap::runtime::Engine<(), u32>> {
    Session::builder(g.clone())
        .partition(partition_spec(kind))
        .mode(mode)
        .threads(4)
        .max_rounds(200_000)
        .program("sssp", Sssp)
        .program("cc", ConnectedComponents)
        .balance(BalancePolicy::new().max_imbalance(1.05).migration_budget(4096))
        .open()
        .expect("open balanced session")
}

/// Cold reference on the final graph under a *fresh* full re-partition
/// (the expensive operation `rebalance()` replaces).
fn cold_reference(
    g: &Graph<(), u32>,
    kind: PartitionKind,
    mode: Mode,
    src: u32,
) -> (Vec<u64>, Vec<u32>) {
    let mut s = Session::builder(g.clone())
        .partition(partition_spec(kind))
        .mode(mode)
        .threads(4)
        .max_rounds(200_000)
        .program("sssp", Sssp)
        .program("cc", ConnectedComponents)
        .open()
        .expect("open cold reference session");
    let d = s.query::<Sssp>("sssp", &src).unwrap();
    let c = s.query::<ConnectedComponents>("cc", &()).unwrap();
    (d, c)
}

/// The full matrix on one deterministic skewed stream: warm serving
/// across a rebalance equals a full re-partition + cold run, for
/// SSSP + CC × edge-cut + vertex-cut × all five modes, with hostile
/// simulator schedules agreeing on every fixpoint.
#[test]
fn rebalance_matches_full_repartition_across_modes_and_partitions() {
    let g = grape_aap::graph::generate::small_world(90, 2, 0.2, 23);
    let deltas = skewed_stream(&g, FRAGS, 6, 24, 0xE1A);
    let g_fin = deltas.iter().fold(g.clone(), |acc, d| apply_to_graph(&acc, d));
    for kind in PARTITIONS {
        for mode in all_modes() {
            let label = format!("matrix[{kind:?},{mode:?}]");
            let mut session = balanced_session(&g, kind, mode.clone());
            let pre_s = session.query::<Sssp>("sssp", &0).unwrap();
            for (i, d) in deltas.iter().enumerate() {
                session.apply(d).unwrap_or_else(|e| panic!("{label}: apply {i}: {e}"));
            }
            assert_ne!(pre_s, session.query::<Sssp>("sssp", &0).unwrap(), "{label}: stream inert");

            let before = session.balance_report().expect("policy configured");
            let report = session.rebalance().unwrap_or_else(|e| panic!("{label}: rebalance: {e}"));
            if kind == PartitionKind::EdgeCut {
                // The skewed stream piles edges onto fragment 0; the
                // planner must both find moves and actually help.
                assert!(before.imbalance > 1.05, "{label}: stream failed to skew the partition");
                assert!(report.vertices_migrated > 0, "{label}: empty plan on a skewed partition");
                assert!(
                    report.imbalance_after < report.imbalance_before,
                    "{label}: rebalance did not reduce imbalance ({report:?})"
                );
            }

            // Warm serving across the migration == full re-partition +
            // cold run on the final graph.
            let (ref_s, ref_c) = cold_reference(&g_fin, kind, mode.clone(), 0);
            assert_eq!(
                session.query::<Sssp>("sssp", &0).unwrap(),
                ref_s,
                "{label}: SSSP diverged from full re-partition after rebalance"
            );
            assert_eq!(
                session.query::<ConnectedComponents>("cc", &()).unwrap(),
                ref_c,
                "{label}: CC diverged from full re-partition after rebalance"
            );
            // A never-before-seen query runs cold on the migrated
            // fragments — the repacked layout itself must be sound.
            let (ref_s2, _) = cold_reference(&g_fin, kind, mode.clone(), 2);
            assert_eq!(
                session.query::<Sssp>("sssp", &2).unwrap(),
                ref_s2,
                "{label}: cold query on migrated fragments diverged"
            );

            // Hostile schedules on the final graph agree with what the
            // rebalanced session serves.
            for seed in fuzz_seeds(3) {
                let fuzzed =
                    SimEngine::new(build_parts(&g_fin, kind, FRAGS), fuzz_opts(mode.clone(), seed))
                        .expect("fuzz opts are valid")
                        .run(&Sssp, &0);
                assert_eq!(
                    fuzzed.out, ref_s,
                    "{label}: hostile schedule diverged — ScheduleFuzz::seeded({seed})"
                );
            }

            // The session keeps streaming warm on the migrated layout.
            let tail = skewed_stream(&g_fin, FRAGS, 1, 8, 0xF00 + seed_of(kind, &mode));
            let g_more = apply_to_graph(&g_fin, &tail[0]);
            session.apply(&tail[0]).unwrap_or_else(|e| panic!("{label}: post-rebalance apply: {e}"));
            let (ref_s3, _) = cold_reference(&g_more, kind, mode.clone(), 0);
            assert_eq!(
                session.query::<Sssp>("sssp", &0).unwrap(),
                ref_s3,
                "{label}: warm advance after rebalance diverged"
            );
        }
    }
}

fn seed_of(kind: PartitionKind, mode: &Mode) -> u64 {
    (kind == PartitionKind::VertexCut) as u64 * 31 + format!("{mode:?}").len() as u64
}

/// Vertex-cut must rebalance through the shared in-place patch path —
/// ownership hops between existing holders, the pair-hashed edge
/// placement never moves, and `migration_bytes` reflects values only
/// (no adjacency payload, unlike edge-cut).
#[test]
fn vertex_cut_rebalance_moves_between_holders_in_place() {
    let g = grape_aap::graph::generate::small_world(120, 2, 0.25, 7);
    let mut session = Session::builder(g.clone())
        .partition(vertex_cut(FRAGS))
        .mode(Mode::aap())
        .threads(4)
        .program("sssp", Sssp)
        .balance(BalancePolicy::new().max_imbalance(1.0).migration_budget(4096))
        .open()
        .unwrap();
    let before = session.query::<Sssp>("sssp", &0).unwrap();
    let loads0 = session.balance_report().unwrap().loads;
    let report = session.rebalance().unwrap();
    if report.vertices_migrated > 0 {
        // Values only: strictly fewer bytes per vertex than any
        // adjacency-carrying edge-cut move could produce.
        assert!(report.migration_bytes < report.vertices_migrated * 8, "{report:?}");
        assert!(report.fragments_repacked > 0, "{report:?}");
        assert_ne!(session.balance_report().unwrap().loads, loads0);
    }
    assert_eq!(session.query::<Sssp>("sssp", &0).unwrap(), before);
    assert_eq!(session.metrics().vertices_migrated, report.vertices_migrated);
}

/// Error surface: no policy, no rebalance — and no monitor overhead.
#[test]
fn rebalance_without_policy_is_an_error() {
    let g = grape_aap::graph::generate::small_world(40, 2, 0.2, 1);
    let mut session = Session::builder(g)
        .partition(edge_cut(2))
        .program("sssp", Sssp)
        .open()
        .unwrap();
    assert!(session.balance_report().is_none());
    assert!(matches!(session.rebalance(), Err(SessionError::NoBalancePolicy)));
}

/// Auto mode: an apply that leaves the partition over threshold
/// triggers the rebalance inside `apply()` itself; serving afterwards
/// still equals the full re-partition reference.
#[test]
fn auto_rebalance_fires_after_skewed_applies() {
    let g = grape_aap::graph::generate::small_world(90, 2, 0.2, 23);
    let deltas = skewed_stream(&g, FRAGS, 6, 24, 0xA07);
    let g_fin = deltas.iter().fold(g.clone(), |acc, d| apply_to_graph(&acc, d));
    let mut session = Session::builder(g.clone())
        .partition(edge_cut(FRAGS))
        .mode(Mode::aap())
        .threads(4)
        .program("sssp", Sssp)
        .balance(BalancePolicy::new().max_imbalance(1.1).auto(true))
        .open()
        .unwrap();
    session.query::<Sssp>("sssp", &0).unwrap();
    for d in &deltas {
        session.apply(d).unwrap();
    }
    assert!(session.metrics().rebalances > 0, "auto policy never fired on a skewed stream");
    assert!(
        session.balance_report().unwrap().imbalance <= 1.1 + 0.25,
        "auto rebalancing left the partition badly skewed: {:?}",
        session.balance_report().unwrap()
    );
    let (ref_s, _) = cold_reference(&g_fin, PartitionKind::EdgeCut, Mode::aap(), 0);
    assert_eq!(session.query::<Sssp>("sssp", &0).unwrap(), ref_s);
}

/// Durability: a rebalance is **never logged**. Killing the session
/// after a rebalance but before any checkpoint must restore the
/// consistent **pre-plan** state (the log replays onto the old
/// partition); killing after a checkpoint restores the **post-plan**
/// layout. Both serve identical answers.
#[test]
fn crash_around_rebalance_restores_consistent_state() {
    let g = grape_aap::graph::generate::small_world(90, 2, 0.2, 23);
    let deltas = skewed_stream(&g, FRAGS, 5, 24, 0xC4A);
    let g_fin = deltas.iter().fold(g.clone(), |acc, d| apply_to_graph(&acc, d));
    let (ref_s, ref_c) = cold_reference(&g_fin, PartitionKind::EdgeCut, Mode::aap(), 0);

    for checkpoint_after in [false, true] {
        let dir = scratch_dir(if checkpoint_after { "bal_post" } else { "bal_pre" });
        let mut session = Session::builder(g.clone())
            .partition(edge_cut(FRAGS))
            .mode(Mode::aap())
            .threads(4)
            .program("sssp", Sssp)
            .program("cc", ConnectedComponents)
            .balance(BalancePolicy::new().max_imbalance(1.05))
            .durable(&dir)
            .unwrap()
            .open()
            .unwrap();
        session.query::<Sssp>("sssp", &0).unwrap();
        session.query::<ConnectedComponents>("cc", &()).unwrap();
        for (i, d) in deltas.iter().enumerate() {
            session.apply(d).unwrap();
            if i == 1 {
                session.checkpoint().unwrap(); // mid-stream epoch
            }
        }
        let report = session.rebalance().unwrap();
        assert!(report.vertices_migrated > 0, "skewed stream must force a real plan");
        let live_s = session.query::<Sssp>("sssp", &0).unwrap();
        let live_c = session.query::<ConnectedComponents>("cc", &()).unwrap();
        if checkpoint_after {
            session.checkpoint().unwrap(); // persists the migrated layout
        }
        drop(session); // the kill

        let mut restored: Session<(), u32, _> = Session::restore(&dir)
            .mode(Mode::aap())
            .threads(4)
            .program("sssp", Sssp)
            .program("cc", ConnectedComponents)
            .balance(BalancePolicy::new().max_imbalance(1.05))
            .open()
            .unwrap_or_else(|e| panic!("restore (checkpoint_after={checkpoint_after}): {e}"));
        assert_eq!(
            restored.query::<Sssp>("sssp", &0).unwrap(),
            live_s,
            "restored SSSP diverged (checkpoint_after={checkpoint_after})"
        );
        assert_eq!(
            restored.query::<ConnectedComponents>("cc", &()).unwrap(),
            live_c,
            "restored CC diverged (checkpoint_after={checkpoint_after})"
        );
        assert_eq!(live_s, ref_s, "live session vs full re-partition");
        assert_eq!(live_c, ref_c, "live session vs full re-partition");

        // The revived directory is healthy: it applies, rebalances
        // (the pre-plan restore is skewed again) and checkpoints.
        let tail = skewed_stream(&g_fin, FRAGS, 1, 8, 0xD1E);
        restored.apply(&tail[0]).unwrap();
        restored.rebalance().unwrap();
        restored.checkpoint().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: cases(6), ..ProptestConfig::default() })]

    /// Random graphs: interleaving rebalances *into* the middle of a
    /// skewed stream (migrate, then keep streaming warm) stays
    /// equivalent to the final-graph cold run, for both partition
    /// kinds under AAP.
    #[test]
    fn rebalance_mid_stream_stays_equivalent(
        g in arb_graph(),
        seed in 0u64..1000,
        kind_idx in 0usize..2,
    ) {
        let kind = PARTITIONS[kind_idx];
        let deltas = skewed_stream(&g, FRAGS, 4, 12, seed);
        let mut session = balanced_session(&g, kind, Mode::aap());
        session.query::<Sssp>("sssp", &0).unwrap();
        session.query::<ConnectedComponents>("cc", &()).unwrap();
        let mut g_cur = g.clone();
        for (i, d) in deltas.iter().enumerate() {
            session.apply(d).unwrap();
            g_cur = apply_to_graph(&g_cur, d);
            if i == 1 {
                session.rebalance().unwrap();
            }
        }
        session.rebalance().unwrap();
        let (ref_s, ref_c) = cold_reference(&g_cur, kind, Mode::aap(), 0);
        prop_assert_eq!(session.query::<Sssp>("sssp", &0).unwrap(), ref_s);
        prop_assert_eq!(session.query::<ConnectedComponents>("cc", &()).unwrap(), ref_c);
    }
}
