//! Deletion-exactness acceptance suite: long adversarial delta streams
//! (edge inserts, edge removals, weight increases *and* decreases,
//! vertex adds and removals, interleaved) must satisfy
//! `run_incremental == cold-on-current-graph` **after every batch**,
//! for SSSP and CC, on edge-cut and vertex-cut partitions, under all
//! five execution modes — and no batch may reach the cold fallback:
//! removals and weight increases run the `warm-increase`
//! affected-region path (Ramalingam–Reps for SSSP, spanning-forest
//! splits for CC).
//!
//! The deterministic tail checks the payoff: a deletion-only 0.1% delta
//! performs ≥5x fewer effective updates than a cold recompute.

use aap_testkit::{
    adversarial_stream, all_modes, arb_graph, assert_equiv, assert_equiv_sim, fuzz_seeds,
    PartitionKind, PARTITIONS,
};
use grape_aap::delta::generate::remove_batch;
use grape_aap::delta::WarmStrategy;
use grape_aap::graph::generate;
use grape_aap::prelude::*;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: aap_testkit::cases(12), ..ProptestConfig::default() })]

    /// The core matrix: adversarial streams, both algorithms, both
    /// partition kinds, mode drawn per case (the deterministic test
    /// below covers the full five-mode matrix on a fixed stream).
    #[test]
    fn adversarial_streams_are_exact_and_never_cold(
        g in arb_graph(),
        m in 2usize..5,
        seed in 0u64..1000,
        mode_pick in 0usize..5,
        src_pick in 0u32..1000,
    ) {
        let deltas = adversarial_stream(&g, 5, seed);
        let src = src_pick % g.num_vertices() as u32;
        let mode = all_modes().swap_remove(mode_pick);
        for kind in PARTITIONS {
            let r = assert_equiv(&Sssp, &src, &g, &deltas, kind, m, mode.clone(),
                                 &fuzz_seeds(0), "sssp_adversarial");
            prop_assert!(!r.saw(WarmStrategy::Cold),
                "SSSP cold-fell-back on {kind:?}: {:?}", r.strategies);
            let r = assert_equiv(&ConnectedComponents, &(), &g, &deltas, kind, m, mode.clone(),
                                 &fuzz_seeds(0), "cc_adversarial");
            prop_assert!(!r.saw(WarmStrategy::Cold),
                "CC cold-fell-back on {kind:?}: {:?}", r.strategies);
        }
    }

    /// The simulator agrees too (deterministic virtual time).
    #[test]
    fn adversarial_streams_are_exact_in_sim(
        g in arb_graph(),
        m in 2usize..5,
        seed in 0u64..1000,
    ) {
        let deltas = adversarial_stream(&g, 4, seed);
        assert_equiv_sim(&Sssp, &0, &g, &deltas, PartitionKind::VertexCut, m, Mode::aap(),
                         &fuzz_seeds(1), "sssp_sim");
        assert_equiv_sim(&ConnectedComponents, &(), &g, &deltas, PartitionKind::EdgeCut, m,
                         Mode::aap(), &fuzz_seeds(1), "cc_sim");
    }
}

/// Full five-mode × two-partition matrix on one fixed adversarial
/// stream — the guarantee the proptest samples, pinned exhaustively.
/// Every cell additionally re-solves each post-batch graph under ≥8
/// seeded hostile schedules ([`ScheduleFuzz`]); any divergence panics
/// naming the reproducing seed. `AAP_FUZZ_SEEDS` deepens the sweep.
#[test]
fn fixed_stream_full_mode_matrix() {
    let g = generate::small_world(120, 2, 0.2, 0xF1);
    let deltas = adversarial_stream(&g, 4, 0xF2);
    let seeds = fuzz_seeds(8);
    for mode in all_modes() {
        for kind in PARTITIONS {
            let r =
                assert_equiv(&Sssp, &3, &g, &deltas, kind, 3, mode.clone(), &seeds, "matrix_sssp");
            assert!(!r.saw(WarmStrategy::Cold));
            let r = assert_equiv(
                &ConnectedComponents,
                &(),
                &g,
                &deltas,
                kind,
                3,
                mode.clone(),
                &seeds,
                "matrix_cc",
            );
            assert!(!r.saw(WarmStrategy::Cold));
        }
    }
}

/// Deletion-only batches must be genuinely incremental: ≥5x fewer
/// effective updates than the cold recompute they replace, while the
/// whole stream runs `warm-increase`.
#[test]
fn deletion_only_does_5x_less_work_than_cold() {
    let g = generate::rmat(11, 8, true, 3);
    let count = (g.num_edges() / 1000).max(4);
    let deltas = [remove_batch(&g, count, 0xDE1)];
    let r = assert_equiv(
        &Sssp,
        &0,
        &g,
        &deltas,
        PartitionKind::EdgeCut,
        6,
        Mode::aap(),
        &[],
        "sssp_delete_5x",
    );
    assert_eq!(r.strategies, vec![WarmStrategy::WarmIncrease]);
    assert!(
        r.incremental_effective * 5 < r.cold_effective.max(1),
        "deletion-only warm run ({} effective updates) should do ≥5x less than cold ({})",
        r.incremental_effective,
        r.cold_effective
    );

    let r = assert_equiv(
        &ConnectedComponents,
        &(),
        &g,
        &deltas,
        PartitionKind::EdgeCut,
        6,
        Mode::aap(),
        &[],
        "cc_delete_5x",
    );
    assert_eq!(r.strategies, vec![WarmStrategy::WarmIncrease]);
    assert!(
        r.incremental_effective * 5 < r.cold_effective.max(1),
        "CC deletion-only warm run ({} effective) should do ≥5x less than cold ({})",
        r.incremental_effective,
        r.cold_effective
    );
}
