//! Proof that observability is free when off and bounded when on:
//!
//! * a disabled [`Tracer`] (the default every layer starts with) adds
//!   **zero heap allocations** to the steady-state route/drain rounds —
//!   the same zero-alloc bar `alloc_routing.rs` pins for the scratch
//!   subsystem, now with trace calls interleaved at engine density;
//! * a [`Recorder`] ring never allocates again once its window has
//!   wrapped, no matter how many more events stream through it.

use grape_aap::graph::partition::{build_fragments, hash_partition};
use grape_aap::graph::{generate, Fragment};
use grape_aap::prelude::*;
use grape_aap::runtime::inbox::Inbox;
use grape_aap::runtime::pie::route_updates_into;
use grape_aap::runtime::Scratch;
use grape_aap::trace::{cat, pid, Args, TraceSink};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates verbatim to the system allocator; the counter is a
// relaxed atomic with no further invariants.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Run `body` up to three times and return the smallest allocation
/// count any window observed. The counter is process-global, so a
/// concurrently running test (or the harness's own output buffering)
/// can bleed a stray allocation into one window; a genuine regression
/// allocates in **every** window — typically once per call, not twice
/// per quarter-million.
fn min_allocs_over_windows(mut body: impl FnMut()) -> u64 {
    (0..3)
        .map(|_| {
            let before = ALLOCS.load(Ordering::Relaxed);
            body();
            ALLOCS.load(Ordering::Relaxed) - before
        })
        .min()
        .expect("three windows")
}

struct MinProg;

impl PieProgram<(), u32> for MinProg {
    type Query = ();
    type Val = u64;
    type State = ();
    type Out = ();

    fn combine(&self, a: &mut u64, b: u64) -> bool {
        if b < *a {
            *a = b;
            true
        } else {
            false
        }
    }

    fn peval(&self, _: &(), _: &Fragment<(), u32>, _: &mut UpdateCtx<u64>) {}

    fn inceval(
        &self,
        _: &(),
        _: &Fragment<(), u32>,
        _: &mut (),
        _: &mut Messages<u64>,
        _: &mut UpdateCtx<u64>,
    ) {
    }

    fn assemble(&self, _: &(), _: &[Arc<Fragment<(), u32>>], _: Vec<()>) {}
}

/// The engine's per-round trace shape: a round span wrapping eval and
/// route child spans, a batch instant per destination, and a counter —
/// the exact call pattern `aap_core::Engine` makes each worker round.
fn round_trace_calls(tracer: &Tracer, worker: u32, round: u32, batches: usize) {
    let args = Args::new().with("round", u64::from(round));
    tracer.begin(pid::ENGINE, worker, cat::ROUND, "round", args);
    tracer.begin(pid::ENGINE, worker, cat::PHASE, "eval", Args::new());
    tracer.end(pid::ENGINE, worker, cat::PHASE, "eval", Args::new());
    tracer.begin(pid::ENGINE, worker, cat::PHASE, "route", Args::new());
    tracer.end(pid::ENGINE, worker, cat::PHASE, "route", Args::new());
    for dst in 0..batches {
        let args = Args::new().with("dst", dst as u64);
        tracer.instant(pid::ENGINE, worker, cat::MSG, "batch", args);
    }
    tracer.end(pid::ENGINE, worker, cat::ROUND, "round", Args::new());
    tracer.counter(pid::ENGINE, worker, "rounds", u64::from(round));
}

#[test]
fn disabled_tracer_adds_zero_allocations_to_steady_rounds() {
    let g = generate::small_world(2_000, 3, 0.2, 7);
    let m = 4usize;
    let frags = build_fragments(&g, &hash_partition(&g, m));
    let mut scratches: Vec<Scratch<u64>> = (0..m).map(|_| Scratch::default()).collect();
    let mut inboxes: Vec<Inbox<u64>> = (0..m).map(|_| Inbox::default()).collect();
    let templates: Vec<Vec<(LocalId, u64)>> = frags
        .iter()
        .map(|f| {
            f.local_vertices()
                .filter(|&l| f.routing().fanout_len(l) > 0)
                .map(|l| (l, f.global(l) as u64))
                .collect()
        })
        .collect();
    assert!(templates.iter().any(|t| !t.is_empty()), "graph must have cut edges");

    // Off by default — exactly what every layer holds until a sink is
    // installed. The branch must be the only cost.
    let tracer = Tracer::default();
    assert!(!tracer.enabled());

    let mut updates: Vec<Vec<(LocalId, u64)>> = vec![Vec::new(); m];
    let mut outs: Vec<Vec<(FragId, _)>> = (0..m).map(|_| Vec::new()).collect();

    let mut one_round = |round: u32| {
        for i in 0..m {
            updates[i].extend_from_slice(&templates[i]);
            route_updates_into(
                &MinProg,
                &frags[i],
                round,
                &mut updates[i],
                &mut scratches[i],
                &mut outs[i],
            );
            let batches = outs[i].len();
            for (dst, batch) in outs[i].drain(..) {
                inboxes[dst as usize].push(batch);
            }
            round_trace_calls(&tracer, i as u32, round, batches);
        }
        for j in 0..m {
            let _ = inboxes[j].drain_into(&MinProg, &frags[j], &mut scratches[j]);
        }
    };

    // Warm-up: grow every buffer to its steady-state size.
    let mut round = 0u32;
    while round < 8 {
        one_round(round);
        round += 1;
    }
    let allocs = min_allocs_over_windows(|| {
        for _ in 0..56 {
            one_round(round);
            round += 1;
        }
    });
    assert_eq!(allocs, 0, "steady-state rounds with a disabled tracer hit the allocator");
}

#[test]
fn a_million_disabled_calls_allocate_nothing() {
    let tracer = Tracer::default();
    let allocs = min_allocs_over_windows(|| {
        for i in 0..250_000u32 {
            round_trace_calls(&tracer, i % 4, i, 2);
        }
    });
    assert_eq!(allocs, 0, "disabled trace calls allocated");
}

#[test]
fn recorder_memory_is_capped_and_wrap_is_allocation_free() {
    const CAP: usize = 1_024;
    const TOTAL: usize = 10 * CAP;
    let rec = Recorder::with_capacity(CAP);
    let ev = grape_aap::trace::TraceEvent {
        name: "round",
        cat: cat::ROUND,
        ph: grape_aap::trace::Phase::Instant,
        ts_us: 0,
        pid: pid::ENGINE,
        tid: 0,
        args: Args::new().with("round", 1u64),
    };

    // Fill the window (the ring's storage is reserved up front).
    for t in 0..CAP {
        rec.event(&grape_aap::trace::TraceEvent { ts_us: t as u64, ..ev });
    }
    assert_eq!(rec.len(), CAP);
    assert_eq!(rec.dropped(), 0);

    // Stream an order of magnitude more: memory must stay capped and the
    // full ring must never touch the allocator again.
    let allocs_before = ALLOCS.load(Ordering::Relaxed);
    for t in CAP..TOTAL {
        rec.event(&grape_aap::trace::TraceEvent { ts_us: t as u64, ..ev });
    }
    let allocs_after = ALLOCS.load(Ordering::Relaxed);
    assert_eq!(allocs_after - allocs_before, 0, "a wrapped recorder allocated");
    assert_eq!(rec.len(), CAP, "ring exceeded its capacity");
    assert_eq!(rec.dropped(), (TOTAL - CAP) as u64);

    // The survivors are exactly the most recent CAP events, in order.
    let ts: Vec<u64> = rec.events().iter().map(|e| e.ts_us).collect();
    assert_eq!(ts.first().copied(), Some((TOTAL - CAP) as u64));
    assert_eq!(ts.last().copied(), Some(TOTAL as u64 - 1));
    assert!(ts.windows(2).all(|w| w[0] + 1 == w[1]));
}

/// An enabled tracer feeding a wrapped recorder also stays off the
/// allocator: the event structs are `Copy`, the ring overwrites in
/// place, so even *enabled* steady-state tracing is allocation-free
/// once the window is warm.
#[test]
fn enabled_tracer_into_wrapped_recorder_allocates_nothing() {
    let rec = Arc::new(Recorder::with_capacity(256));
    let tracer = Tracer::new(Arc::clone(&rec));
    assert!(tracer.enabled());

    // Warm: wrap the ring once.
    for i in 0..512u32 {
        round_trace_calls(&tracer, i % 4, i, 2);
    }
    assert!(rec.dropped() > 0, "window must have wrapped before measuring");

    let allocs = min_allocs_over_windows(|| {
        for i in 512..4_096u32 {
            round_trace_calls(&tracer, i % 4, i, 2);
        }
    });
    assert_eq!(allocs, 0, "enabled steady-state tracing allocated");
}
