//! Behavioural tests of the execution modes themselves: lockstep under
//! BSP, bounded lead under SSP, delay stretches under AAP, and the
//! statistics that the §7 analysis relies on.

use grape_aap::algos::{ConnectedComponents, PageRank};
use grape_aap::graph::partition::{build_fragments_n, hash_partition};
use grape_aap::graph::{generate, Graph};
use grape_aap::prelude::*;
use grape_aap::sim::SpanKind;

fn frags(g: &Graph<(), u32>, m: usize) -> Vec<Fragment<(), u32>> {
    build_fragments_n(g, &hash_partition(g, m), m)
}

/// Under BSP in the simulator, compute spans of different workers in the
/// same superstep start at the same virtual instant.
#[test]
fn bsp_supersteps_start_together() {
    let g = generate::small_world(240, 2, 0.1, 3);
    let sim = SimEngine::new(frags(&g, 4), SimOpts { mode: Mode::Bsp, ..SimOpts::default() })
        .expect("valid opts");
    let out = sim.run(&ConnectedComponents, &());
    // Group compute spans by round: all starts within a round are equal.
    let mut starts: std::collections::BTreeMap<u32, Vec<f64>> = Default::default();
    for tl in &out.timelines {
        for s in tl.spans.iter().filter(|s| s.kind == SpanKind::Compute) {
            starts.entry(s.round).or_default().push(s.start);
        }
    }
    for (round, ss) in starts {
        let min = ss.iter().cloned().fold(f64::MAX, f64::min);
        let max = ss.iter().cloned().fold(f64::MIN, f64::max);
        assert!((max - min).abs() < 1e-9, "superstep {round} starts spread over {min}..{max}");
    }
}

/// Under SSP with bound `c`, no compute span of round `r` may overlap a
/// time when some worker still hasn't finished round `r - c - 1`.
#[test]
fn ssp_bounds_the_lead_in_time() {
    let c = 2u32;
    let g = generate::rmat(9, 8, true, 7);
    let mut speed = vec![1.0; 6];
    speed[0] = 6.0; // heavy straggler
    let sim = SimEngine::new(
        frags(&g, 6),
        SimOpts {
            mode: Mode::Ssp { c },
            latency: 0.5,
            cost: CostModel::skewed_work(speed),
            max_rounds: Some(100_000),
            ..SimOpts::default()
        },
    )
    .expect("valid opts");
    let out = sim.run(&ConnectedComponents, &());
    // completion time of round r per worker
    let done_at = |w: usize, r: u32| -> Option<f64> {
        out.timelines[w]
            .spans
            .iter()
            .find(|s| s.kind == SpanKind::Compute && s.round == r)
            .map(|s| s.end)
    };
    for (w, tl) in out.timelines.iter().enumerate() {
        for s in tl.spans.iter().filter(|s| s.kind == SpanKind::Compute) {
            if s.round <= c + 1 {
                continue;
            }
            let gate = s.round - c - 1;
            // Every *other* worker that eventually reached round `gate`
            // must have completed it before this span started.
            for (o, _) in out.timelines.iter().enumerate() {
                if o == w {
                    continue;
                }
                if let Some(t) = done_at(o, gate) {
                    assert!(
                        t <= s.start + 1e-9,
                        "worker {w} ran round {} at {:.2} while worker {o} finished round {gate} only at {t:.2}",
                        s.round,
                        s.start
                    );
                }
            }
        }
    }
}

/// AAP actually exercises its delay stretch on straggler-heavy PageRank
/// (suspend time > 0), while AP never suspends.
#[test]
fn aap_suspends_ap_does_not() {
    let g = generate::rmat(10, 8, true, 9);
    let mut speed = vec![1.0; 8];
    speed[2] = 4.0;
    let mk = |mode: Mode| {
        SimEngine::new(
            frags(&g, 8),
            SimOpts {
                mode,
                latency: 2.0,
                cost: CostModel::skewed_work(speed.clone()),
                max_rounds: Some(200_000),
                ..SimOpts::default()
            },
        )
        .expect("valid opts")
        .run(&PageRank { damping: 0.85, epsilon: 1e-3 }, &())
    };
    let ap = mk(Mode::Ap);
    let aap = mk(Mode::aap());
    let suspend = |r: &RunStats| r.workers.iter().map(|w| w.suspend_time).sum::<f64>();
    assert_eq!(suspend(&ap.stats), 0.0);
    assert!(suspend(&aap.stats) > 0.0, "AAP should stretch delays under skew");
    // and the accumulation must pay off in fewer shipped updates
    assert!(
        aap.stats.total_updates() < ap.stats.total_updates(),
        "AAP {} vs AP {}",
        aap.stats.total_updates(),
        ap.stats.total_updates()
    );
}

/// The Hsync controller switches phases at least once on a workload whose
/// skew profile changes (it starts sync, goes async under skew).
#[test]
fn hsync_runs_and_converges() {
    let g = generate::rmat(9, 8, true, 10);
    let mut speed = vec![1.0; 6];
    speed[1] = 5.0;
    let sim = SimEngine::new(
        frags(&g, 6),
        SimOpts {
            mode: Mode::Hsync(HsyncConfig { window: 4, straggler_threshold: 1.5 }),
            latency: 1.0,
            cost: CostModel::skewed_work(speed),
            max_rounds: Some(200_000),
            ..SimOpts::default()
        },
    )
    .expect("valid opts");
    let out = sim.run(&ConnectedComponents, &());
    let expect = grape_aap::algos::seq::connected_components(&g);
    assert_eq!(out.out, expect);
}

/// Empty-graph and single-vertex edge cases terminate immediately.
#[test]
fn degenerate_graphs() {
    let empty: Graph<(), u32> = generate::uniform(0, 0, true, 0);
    let frags0 = build_fragments_n(&empty, &[], 2);
    let run = Engine::new(frags0, EngineOpts::default()).run(&ConnectedComponents, &());
    assert!(run.out.is_empty());

    let single = generate::uniform(1, 0, true, 0);
    let frags1 = build_fragments_n(&single, &[0], 1);
    let run = Engine::new(frags1, EngineOpts::default()).run(&ConnectedComponents, &());
    assert_eq!(run.out, vec![0]);
}
