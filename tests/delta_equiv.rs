//! Delta-equivalence property tests: for random graphs, partitions, and
//! random mutation batches, `apply(delta) + full cold run` and
//! `run_incremental(delta, retained state)` must produce **identical**
//! results for SSSP and CC — over edge-cut and vertex-cut partitions, in
//! the threaded engine and the deterministic simulator.
//!
//! Monotone-decreasing deltas exercise the warm-start path proper;
//! batches with removals exercise the documented cold-recompute fallback
//! through the same driver. Either way the answers must match.

use grape_aap::algos::{ConnectedComponents, Sssp};
use grape_aap::delta::{self, DeltaBuilder, GraphDelta};
use grape_aap::graph::partition::{
    build_fragments_n, build_fragments_vertex_cut_n, hash_partition, vertex_cut_partition,
};
use grape_aap::graph::{generate, Graph};
use grape_aap::prelude::*;
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = Graph<(), u32>> {
    prop_oneof![
        (12usize..80, 2usize..6, 0u64..50).prop_map(|(n, ef, s)| generate::uniform(
            n,
            n * ef,
            true,
            s
        )),
        (12usize..80, 1usize..3, 0u64..50).prop_map(|(n, k, s)| generate::small_world(
            n,
            k.max(1),
            0.3,
            s
        )),
    ]
}

/// A random batch: edge inserts and weight decreases (monotone), plus —
/// when `allow_removals` — edge/vertex removals that force the fallback.
fn arb_delta(g: &Graph<(), u32>, seed: u64, allow_removals: bool) -> GraphDelta<(), u32> {
    let n = g.num_vertices() as u32;
    let mut b: DeltaBuilder<(), u32> = DeltaBuilder::new();
    let mut rng = grape_aap::delta::generate::Xorshift::new(seed);
    let mut next = move || rng.next_u64();
    let inserts = 1 + (next() % 6) as usize;
    for _ in 0..inserts {
        let u = (next() % n as u64) as u32;
        let v = (next() % n as u64) as u32;
        if u != v {
            b.add_edge(u, v, 1 + (next() % 9) as u32);
        }
    }
    if next() % 2 == 0 {
        // Weight decrease on an existing edge (min over current weights
        // keeps it monotone-decreasing).
        let u = (next() % n as u64) as u32;
        if let Some((&t, &w)) = g.neighbors(u).first().zip(g.edge_data(u).first()) {
            b.set_weight(u, t, w.saturating_sub(1).max(1).min(w));
        }
    }
    if allow_removals {
        for _ in 0..(1 + next() % 3) {
            let u = (next() % n as u64) as u32;
            if let Some(&t) = g.neighbors(u).first() {
                b.remove_edge(u, t);
            }
        }
        if next() % 3 == 0 {
            b.remove_vertex((next() % n as u64) as u32);
        }
    }
    b.build()
}

/// Warm/incremental vs cold-on-mutated-graph, threaded engine, edge-cut.
fn check_edge_cut(g: &Graph<(), u32>, m: usize, delta: &GraphDelta<(), u32>, src: u32) {
    let assignment = hash_partition(g, m);
    let mk_engine = |frags| {
        Engine::new(frags, EngineOpts { threads: 4, mode: Mode::aap(), max_rounds: Some(100_000) })
    };

    // Incremental side: cold retained run, then the delta driver.
    let mut engine = mk_engine(build_fragments_n(g, &assignment, m));
    let (_, mut sssp_state) = engine.run_retained(&Sssp, &src);
    let inc_sssp = delta::run_incremental(&mut engine, &Sssp, &src, delta, &mut sssp_state);

    let mut engine_cc = mk_engine(build_fragments_n(g, &assignment, m));
    let (_, mut cc_state) = engine_cc.run_retained(&ConnectedComponents, &());
    let inc_cc =
        delta::run_incremental(&mut engine_cc, &ConnectedComponents, &(), delta, &mut cc_state);

    // Reference side: apply to the global graph, cold run. The in-place
    // apply assigns fresh vertices by hash — same rule as hash_partition,
    // so ownership agrees by construction.
    let g2 = delta::apply_to_graph(g, delta);
    let assignment2 = hash_partition(&g2, m);
    let full_sssp = mk_engine(build_fragments_n(&g2, &assignment2, m)).run(&Sssp, &src);
    let full_cc = mk_engine(build_fragments_n(&g2, &assignment2, m)).run(&ConnectedComponents, &());

    assert_eq!(inc_sssp.out, full_sssp.out, "SSSP warm vs cold mismatch");
    assert_eq!(inc_cc.out, full_cc.out, "CC warm vs cold mismatch");

    // And the retained state must be reusable: an *empty* follow-up delta
    // must reproduce the same fixpoint without recomputing anything.
    let empty = DeltaBuilder::new().build();
    let again = delta::run_incremental(&mut engine, &Sssp, &src, &empty, &mut sssp_state);
    assert_eq!(again.out, full_sssp.out, "retained state must replay the fixpoint");
    assert_eq!(again.stats.total_updates(), 0, "empty delta must ship no messages");
}

/// Same check over a vertex-cut partition, in the simulator.
fn check_vertex_cut(g: &Graph<(), u32>, m: usize, delta: &GraphDelta<(), u32>, src: u32) {
    let mut sim = SimEngine::new(
        build_fragments_vertex_cut_n(g, &vertex_cut_partition(g, m), m),
        SimOpts::default(),
    );
    let (_, mut st) = sim.run_retained(&Sssp, &src);
    let inc = delta::run_incremental_sim(&mut sim, &Sssp, &src, delta, &mut st);

    let g2 = delta::apply_to_graph(g, delta);
    let full = SimEngine::new(
        build_fragments_vertex_cut_n(&g2, &vertex_cut_partition(&g2, m), m),
        SimOpts::default(),
    )
    .run(&Sssp, &src);
    assert_eq!(inc.out, full.out, "vertex-cut SSSP warm vs cold mismatch");

    let mut sim_cc = SimEngine::new(
        build_fragments_vertex_cut_n(g, &vertex_cut_partition(g, m), m),
        SimOpts::default(),
    );
    let (_, mut st_cc) = sim_cc.run_retained(&ConnectedComponents, &());
    let inc_cc =
        delta::run_incremental_sim(&mut sim_cc, &ConnectedComponents, &(), delta, &mut st_cc);
    let full_cc = SimEngine::new(
        build_fragments_vertex_cut_n(&g2, &vertex_cut_partition(&g2, m), m),
        SimOpts::default(),
    )
    .run(&ConnectedComponents, &());
    assert_eq!(inc_cc.out, full_cc.out, "vertex-cut CC warm vs cold mismatch");
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn edge_cut_monotone_deltas_are_exact(
        g in arb_graph(),
        m in 2usize..5,
        seed in 0u64..1000,
        src_pick in 0u32..1000,
    ) {
        let delta = arb_delta(&g, seed, false);
        prop_assert!(delta.summary().is_monotone_decreasing()
            || delta.summary().edges_added == 0);
        check_edge_cut(&g, m, &delta, src_pick % g.num_vertices() as u32);
    }

    #[test]
    fn edge_cut_removals_fall_back_to_full_recompute(
        g in arb_graph(),
        m in 2usize..5,
        seed in 0u64..1000,
        src_pick in 0u32..1000,
    ) {
        let delta = arb_delta(&g, seed, true);
        check_edge_cut(&g, m, &delta, src_pick % g.num_vertices() as u32);
    }

    #[test]
    fn vertex_cut_deltas_match_full_recompute(
        g in arb_graph(),
        m in 2usize..5,
        seed in 0u64..1000,
        src_pick in 0u32..1000,
    ) {
        let delta = arb_delta(&g, seed, false);
        check_vertex_cut(&g, m, &delta, src_pick % g.num_vertices() as u32);
    }
}

/// Deterministic spot-check across every execution mode: warm-start must
/// agree with cold recompute under BSP, AP, SSP, AAP, and Hsync.
#[test]
fn warm_start_agrees_under_all_modes() {
    let g = generate::small_world(150, 2, 0.15, 13);
    let mut b: DeltaBuilder<(), u32> = DeltaBuilder::new();
    b.add_edge(3, 140, 1);
    b.add_edge(17, 90, 2);
    b.add_vertex(150, ());
    b.add_edge(150, 5, 1);
    let delta = b.build();
    let g2 = delta::apply_to_graph(&g, &delta);
    for mode in
        [Mode::Bsp, Mode::Ap, Mode::Ssp { c: 2 }, Mode::aap(), Mode::Hsync(HsyncConfig::default())]
    {
        let opts = EngineOpts { threads: 4, mode: mode.clone(), max_rounds: Some(100_000) };
        let assignment = hash_partition(&g, 4);
        let mut engine = Engine::new(build_fragments_n(&g, &assignment, 4), opts.clone());
        let (_, mut st) = engine.run_retained(&Sssp, &0);
        let inc = delta::run_incremental(&mut engine, &Sssp, &0, &delta, &mut st);
        let full =
            Engine::new(build_fragments_n(&g2, &hash_partition(&g2, 4), 4), opts).run(&Sssp, &0);
        assert_eq!(inc.out, full.out, "mode {mode:?}");
    }
}

/// The warm path must actually be incremental: on a big graph with a tiny
/// delta, the warm run ships far fewer updates than the cold run.
#[test]
fn warm_start_does_less_work_than_cold() {
    let g = generate::rmat(11, 8, true, 3);
    let assignment = hash_partition(&g, 6);
    let opts = EngineOpts { threads: 4, mode: Mode::aap(), max_rounds: Some(100_000) };
    let mut engine = Engine::new(build_fragments_n(&g, &assignment, 6), opts.clone());
    let (_, mut st) = engine.run_retained(&Sssp, &0);

    let mut b: DeltaBuilder<(), u32> = DeltaBuilder::new();
    b.add_edge(1, 900, 2);
    b.add_edge(40, 1500, 3);
    let delta = b.build();
    let inc = delta::run_incremental(&mut engine, &Sssp, &0, &delta, &mut st);

    let cold = engine.run(&Sssp, &0);
    assert_eq!(inc.out, cold.out);
    assert!(
        inc.stats.total_updates() * 5 < cold.stats.total_updates().max(1),
        "warm run ({} updates) should ship far less than cold ({} updates)",
        inc.stats.total_updates(),
        cold.stats.total_updates()
    );
}
