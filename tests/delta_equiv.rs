//! Delta-equivalence property tests: for random graphs, partitions, and
//! random mutation batches, `apply(delta) + full cold run` and
//! `run_incremental(delta, retained state)` must produce **identical**
//! results for SSSP and CC — over edge-cut and vertex-cut partitions, in
//! the threaded engine and the deterministic simulator.
//!
//! Monotone-decreasing deltas exercise the `warm-decrease` path proper;
//! batches with removals exercise the `warm-increase` affected-region
//! path (SSSP and CC never cold-fall-back any more). Either way the
//! answers must match. The shared scaffolding (graph/delta strategies,
//! mode matrix, the after-every-batch driver) lives in `aap-testkit`.

use aap_testkit::{
    all_modes, arb_delta, arb_graph, assert_equiv, assert_equiv_sim, fuzz_seeds, PartitionKind,
};
use grape_aap::delta::WarmStrategy;
use grape_aap::graph::Graph;
use grape_aap::prelude::*;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: aap_testkit::cases(24), ..ProptestConfig::default() })]

    #[test]
    fn edge_cut_monotone_deltas_are_exact(
        g in arb_graph(),
        m in 2usize..5,
        seed in 0u64..1000,
        src_pick in 0u32..1000,
    ) {
        let delta = arb_delta(&g, seed, false);
        prop_assert!(delta.summary().is_monotone_decreasing()
            || delta.summary().edges_added == 0);
        let src = src_pick % g.num_vertices() as u32;
        let deltas = [delta];
        let r = assert_equiv(&Sssp, &src, &g, &deltas, PartitionKind::EdgeCut, m,
                             Mode::aap(), &fuzz_seeds(1), "sssp_monotone");
        prop_assert!(!r.saw(WarmStrategy::Cold));
        assert_equiv(&ConnectedComponents, &(), &g, &deltas, PartitionKind::EdgeCut, m,
                     Mode::aap(), &fuzz_seeds(1), "cc_monotone");
    }

    #[test]
    fn edge_cut_removals_stay_warm_and_exact(
        g in arb_graph(),
        m in 2usize..5,
        seed in 0u64..1000,
        src_pick in 0u32..1000,
    ) {
        let delta = arb_delta(&g, seed, true);
        let src = src_pick % g.num_vertices() as u32;
        let deltas = [delta];
        // SSSP and CC both have invalidation plans: no batch shape may
        // reach the cold fallback.
        let r = assert_equiv(&Sssp, &src, &g, &deltas, PartitionKind::EdgeCut, m,
                             Mode::aap(), &fuzz_seeds(1), "sssp_removals");
        prop_assert!(!r.saw(WarmStrategy::Cold), "SSSP never cold-falls-back: {:?}", r.strategies);
        let r = assert_equiv(&ConnectedComponents, &(), &g, &deltas, PartitionKind::EdgeCut, m,
                             Mode::aap(), &fuzz_seeds(1), "cc_removals");
        prop_assert!(!r.saw(WarmStrategy::Cold), "CC never cold-falls-back: {:?}", r.strategies);
    }

    #[test]
    fn vertex_cut_deltas_match_full_recompute(
        g in arb_graph(),
        m in 2usize..5,
        seed in 0u64..1000,
        src_pick in 0u32..1000,
    ) {
        let delta = arb_delta(&g, seed, false);
        let src = src_pick % g.num_vertices() as u32;
        let deltas = [delta];
        assert_equiv_sim(&Sssp, &src, &g, &deltas, PartitionKind::VertexCut, m, Mode::aap(),
                         &fuzz_seeds(1), "sssp_vc");
        assert_equiv_sim(&ConnectedComponents, &(), &g, &deltas, PartitionKind::VertexCut, m,
                         Mode::aap(), &fuzz_seeds(1), "cc_vc");
    }
}

/// Deterministic spot-check across every execution mode: warm-start must
/// agree with cold recompute under BSP, AP, SSP, AAP, and Hsync.
#[test]
fn warm_start_agrees_under_all_modes() {
    let g = grape_aap::graph::generate::small_world(150, 2, 0.15, 13);
    let mut b: DeltaBuilder<(), u32> = DeltaBuilder::new();
    b.add_edge(3, 140, 1);
    b.add_edge(17, 90, 2);
    b.add_vertex(150, ());
    b.add_edge(150, 5, 1);
    let deltas = [b.build()];
    for mode in all_modes() {
        assert_equiv(
            &Sssp,
            &0,
            &g,
            &deltas,
            PartitionKind::EdgeCut,
            4,
            mode,
            &fuzz_seeds(2),
            "all_modes",
        );
    }
}

/// The warm path must actually be incremental: on a big graph with a tiny
/// delta, the warm run ships far fewer updates than the cold run.
#[test]
fn warm_start_does_less_work_than_cold() {
    let g: Graph<(), u32> = grape_aap::graph::generate::rmat(11, 8, true, 3);
    let mut b: DeltaBuilder<(), u32> = DeltaBuilder::new();
    b.add_edge(1, 900, 2);
    b.add_edge(40, 1500, 3);
    let deltas = [b.build()];
    let r = assert_equiv(&Sssp, &0, &g, &deltas, PartitionKind::EdgeCut, 6, Mode::aap(), &[], "5x");
    assert!(
        r.incremental_updates * 5 < r.cold_updates.max(1),
        "warm run ({} updates) should ship far less than cold ({} updates)",
        r.incremental_updates,
        r.cold_updates
    );
}
