//! Session-facade equivalence (ISSUE 5 acceptance): a [`Session`]
//! holding **two** retained programs must be indistinguishable — output,
//! retained state, and durable bytes — from the hand-rolled
//! `Engine` + `run_incremental` + `save_engine`/`replay` composition it
//! replaces, after every batch of an adversarial stream, across all
//! five execution modes and both partition kinds, through a mid-stream
//! `checkpoint()` and a full `restore()`.
//!
//! The heavy lifting lives in `aap_testkit::assert_session_equiv` (and
//! its simulator mirror); this suite drives the matrix and the error
//! surface.

use aap_testkit::{
    adversarial_stream, all_modes, arb_graph, assert_crash_restore_equiv,
    assert_full_equals_chain_restore, assert_session_equiv, assert_session_equiv_sim, cases,
    fuzz_seeds, scratch_dir, PartitionKind, CRASH_POINTS, PARTITIONS,
};
use grape_aap::prelude::*;
use grape_aap::runtime::WarmStrategy;
use proptest::prelude::*;

/// The full mode × partition matrix on one deterministic adversarial
/// stream: 5 modes × 2 partition kinds, ≥ 2 programs per session,
/// after-every-batch state equality plus a checkpoint/restore round
/// trip proven byte-identical (the acceptance criterion).
#[test]
fn session_matches_manual_composition_across_modes_and_partitions() {
    let g = grape_aap::graph::generate::small_world(90, 2, 0.2, 23);
    let deltas = adversarial_stream(&g, 4, 0xBEEF);
    for kind in PARTITIONS {
        for mode in all_modes() {
            let report = assert_session_equiv(
                &g,
                0,
                &deltas,
                kind,
                3,
                mode.clone(),
                &fuzz_seeds(4),
                &format!("matrix[{kind:?},{mode:?}]"),
            );
            assert_eq!(report.strategies.len(), deltas.len());
        }
    }
}

/// The adversarial stream must actually exercise the non-monotone path
/// somewhere (otherwise the matrix above proves less than it claims) —
/// and SSSP must never cold-fall-back on it.
#[test]
fn session_streams_stay_warm() {
    let g = grape_aap::graph::generate::small_world(90, 2, 0.2, 23);
    let deltas = adversarial_stream(&g, 4, 0xBEEF);
    let report =
        assert_session_equiv(&g, 0, &deltas, PartitionKind::EdgeCut, 3, Mode::aap(), &[], "warmth");
    assert!(
        report.strategies.iter().any(|(s, _)| *s == WarmStrategy::WarmIncrease),
        "stream never hit warm-increase: {:?}",
        report.strategies
    );
    assert!(
        report.strategies.iter().all(|(s, _)| s.is_warm()),
        "SSSP cold-fell-back inside a session: {:?}",
        report.strategies
    );
}

/// The same facade on the simulator backend (`open_sim`): identical to
/// the hand-rolled `SimEngine` composition in virtual time.
#[test]
fn session_sim_backend_matches_manual_composition() {
    let g = grape_aap::graph::generate::small_world(80, 2, 0.2, 5);
    let deltas = adversarial_stream(&g, 3, 0xD00D);
    for kind in PARTITIONS {
        assert_session_equiv_sim(
            &g,
            0,
            &deltas,
            kind,
            3,
            &fuzz_seeds(2),
            &format!("sim[{kind:?}]"),
        );
    }
}

/// Serving is non-evicting (ISSUE 6): a *different* query value is
/// answered from the bounded answer cache without disturbing the
/// retained fixpoint; `retain_query` switches it explicitly (cold
/// rerun) and later deltas warm-advance the new query.
#[test]
fn requery_replaces_the_retained_fixpoint() {
    let g = grape_aap::graph::generate::small_world(100, 2, 0.2, 9);
    let mut session =
        Session::builder(g.clone()).partition(edge_cut(3)).program("sssp", Sssp).open().unwrap();
    let from0 = session.query::<Sssp>("sssp", &0).unwrap();
    let from7 = session.query::<Sssp>("sssp", &7).unwrap();
    assert_ne!(from0, from7, "different sources answer differently");
    assert_eq!(
        session.retained_query::<Sssp>("sssp").unwrap(),
        Some(&0),
        "plain query never evicts the retained fixpoint"
    );
    assert_eq!(session.retain_query::<Sssp>("sssp", &7).unwrap(), from7);
    assert_eq!(session.retained_query::<Sssp>("sssp").unwrap(), Some(&7));
    let mut b = DeltaBuilder::new();
    b.add_edge(7, 50, 1);
    let report = session.apply(&b.build()).unwrap();
    assert_eq!(report.strategy("sssp"), Some(WarmStrategy::WarmDecrease));
    // The warm-advanced answer serves the retained query, exactly.
    let engine = grape_aap::runtime::Engine::new(
        {
            let g2 = grape_aap::delta::apply_to_graph(&g, &{
                let mut b = DeltaBuilder::new();
                b.add_edge(7, 50, 1);
                b.build()
            });
            grape_aap::graph::partition::build_fragments_n(
                &g2,
                &grape_aap::graph::partition::hash_partition(&g2, 3),
                3,
            )
        },
        Default::default(),
    );
    assert_eq!(session.query::<Sssp>("sssp", &7).unwrap(), engine.run(&Sssp, &7).out);
}

/// The error surface: unknown names, type mismatches, checkpointing a
/// non-durable session, double-initializing a durable directory.
#[test]
fn session_error_surface() {
    let g = grape_aap::graph::generate::small_world(40, 2, 0.2, 1);
    let mut session =
        Session::builder(g.clone()).partition(edge_cut(2)).program("sssp", Sssp).open().unwrap();
    let err = session.query::<Sssp>("nope", &0).expect_err("unknown name");
    assert!(matches!(&err, SessionError::UnknownProgram { .. }));
    assert!(err.to_string().contains("\"sssp\""), "message names the registered programs: {err}");
    assert!(matches!(
        session.query::<ConnectedComponents>("sssp", &()),
        Err(SessionError::ProgramType { .. })
    ));
    assert!(matches!(session.checkpoint(), Err(SessionError::NotDurable)));

    let dir = scratch_dir("reinit");
    let s1 = Session::builder(g.clone())
        .partition(edge_cut(2))
        .program("sssp", Sssp)
        .durable(&dir)
        .unwrap()
        .open()
        .unwrap();
    drop(s1);
    let err = Session::builder(g)
        .partition(edge_cut(2))
        .program("sssp", Sssp)
        .durable(&dir)
        .unwrap()
        .open()
        .err()
        .expect("re-initializing an existing session dir must fail");
    assert!(matches!(err, SessionError::AlreadyInitialized(_)), "{err}");
    std::fs::remove_dir_all(&dir).ok();
}

/// The crash-injection matrix (ISSUE 8): kill the durable machinery at
/// three exact points — between a differential commit and its log
/// rotation, mid-compaction, and mid-background-serialize (with an
/// apply landing inside the cut window) — across all five modes × both
/// partition kinds. Restore must land byte-identical with the live
/// session at the moment of the kill, and the revived directory must
/// still checkpoint.
#[test]
fn crash_points_restore_byte_identical() {
    let g = grape_aap::graph::generate::small_world(90, 2, 0.2, 23);
    let deltas = adversarial_stream(&g, 4, 0xFEED);
    for kind in PARTITIONS {
        for mode in all_modes() {
            for point in CRASH_POINTS {
                assert_crash_restore_equiv(
                    &g,
                    0,
                    &deltas,
                    kind,
                    3,
                    mode.clone(),
                    point,
                    &format!("crash[{kind:?},{mode:?},{point:?}]"),
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: cases(4), ..ProptestConfig::default() })]

    /// Random graphs × adversarial streams through the full durable
    /// session lifecycle (AAP mode, both partition kinds): session ==
    /// hand-rolled composition, byte-for-byte, after every batch and
    /// across checkpoint/restore.
    #[test]
    fn session_equiv_random(g in arb_graph(), seed in 0u64..500) {
        let deltas = adversarial_stream(&g, 3, seed);
        for kind in PARTITIONS {
            assert_session_equiv(&g, 0, &deltas, kind, 3, Mode::aap(), &[],
                &format!("random[{seed},{kind:?}]"));
        }
    }

    /// `full == chain-resolved` over random apply streams: a session
    /// checkpointing full baselines and one chaining differentials
    /// (compacting mid-stream) restore to byte-identical states.
    #[test]
    fn full_equals_chain_restore_random(g in arb_graph(), seed in 0u64..500) {
        let deltas = adversarial_stream(&g, 4, seed);
        for kind in PARTITIONS {
            assert_full_equals_chain_restore(&g, 0, &deltas, kind, 3,
                &format!("fullchain[{seed},{kind:?}]"));
        }
    }
}

/// Crash-mid-append recovery: a torn final log record (the only thing a
/// crash between `apply_inner` and the append's sync can leave) must
/// not brick the directory — restore drops the unacknowledged record,
/// truncates the log, and lands at the prefix state.
#[test]
fn restore_survives_a_torn_log_tail() {
    let g = grape_aap::graph::generate::small_world(80, 2, 0.2, 4);
    let dir = scratch_dir("torn");
    let mut session = Session::builder(g.clone())
        .partition(edge_cut(2))
        .program("sssp", Sssp)
        .durable(&dir)
        .unwrap()
        .open()
        .unwrap();
    session.query::<Sssp>("sssp", &0).unwrap();
    let mut b = DeltaBuilder::new();
    b.add_edge(0, 40, 1);
    session.apply(&b.build()).unwrap();
    let after_first = session.query::<Sssp>("sssp", &0).unwrap();
    let mut b = DeltaBuilder::new();
    b.add_edge(0, 41, 1);
    session.apply(&b.build()).unwrap();
    drop(session);

    // Tear the last record (crash mid-append of batch 2).
    let log = dir.join("deltas.0.dlog");
    let bytes = std::fs::read(&log).unwrap();
    std::fs::write(&log, &bytes[..bytes.len() - 2]).unwrap();

    let mut restored: Session<(), u32, _> =
        Session::restore(&dir).program("sssp", Sssp).open().expect("torn tail must recover");
    assert_eq!(
        restored.query::<Sssp>("sssp", &0).unwrap(),
        after_first,
        "restore lands at the last durably-acknowledged batch"
    );
    // The truncated log is appendable: serving continues durably.
    let mut b = DeltaBuilder::new();
    b.add_edge(0, 42, 1);
    restored.apply(&b.build()).unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

/// Restoring with fewer programs than the directory holds is refused:
/// a later checkpoint would silently drop the unregistered program's
/// durable warm state.
#[test]
fn restore_refuses_unregistered_program_state() {
    let g = grape_aap::graph::generate::small_world(60, 2, 0.2, 8);
    let dir = scratch_dir("unreg");
    let mut session = Session::builder(g)
        .partition(edge_cut(2))
        .program("sssp", Sssp)
        .program("cc", ConnectedComponents)
        .durable(&dir)
        .unwrap()
        .open()
        .unwrap();
    session.query::<Sssp>("sssp", &0).unwrap();
    session.query::<ConnectedComponents>("cc", &()).unwrap();
    session.checkpoint().unwrap();
    drop(session);

    let err = Session::<(), u32, _>::restore(&dir)
        .program("sssp", Sssp)
        .open()
        .err()
        .expect("missing 'cc' registration must be refused");
    assert!(
        matches!(&err, SessionError::UnregisteredProgramState { name } if name == "cc"),
        "{err}"
    );
    // Registering both resumes fine.
    let mut ok: Session<(), u32, _> = Session::restore(&dir)
        .program("sssp", Sssp)
        .program("cc", ConnectedComponents)
        .open()
        .unwrap();
    ok.query::<Sssp>("sssp", &0).unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

/// Durable re-query semantics, pinned: switching the retained query is
/// an in-memory event until the next checkpoint — restore resumes the
/// last checkpointed query, replays the acknowledged delta stream onto
/// it, and a re-query of the newer value is one correct cold run.
#[test]
fn restore_resumes_the_checkpointed_query() {
    let g = grape_aap::graph::generate::small_world(90, 2, 0.2, 13);
    let dir = scratch_dir("requery");
    let mut session = Session::builder(g.clone())
        .partition(edge_cut(3))
        .program("sssp", Sssp)
        .durable(&dir)
        .unwrap()
        .open()
        .unwrap();
    session.query::<Sssp>("sssp", &0).unwrap();
    session.checkpoint().unwrap(); // durable: retained query = 0
                                   // In-memory switch of the retained query (explicit since ISSUE 6 —
                                   // plain `query` would serve 5 from the answer cache, not retain it).
    let from5 = session.retain_query::<Sssp>("sssp", &5).unwrap();
    assert!(session.output::<Sssp>("sssp").unwrap().is_some());
    let mut b = DeltaBuilder::new();
    b.add_edge(5, 30, 1);
    session.apply(&b.build()).unwrap(); // logged
    let from5_after = session.query::<Sssp>("sssp", &5).unwrap();
    let from0_after = {
        // What query 0 answers on the post-delta graph (fresh session).
        let g2 = grape_aap::delta::apply_to_graph(&g, &{
            let mut b = DeltaBuilder::new();
            b.add_edge(5, 30, 1);
            b.build()
        });
        let mut s =
            Session::builder(g2).partition(edge_cut(3)).program("sssp", Sssp).open().unwrap();
        s.query::<Sssp>("sssp", &0).unwrap()
    };
    drop(session);

    let mut restored: Session<(), u32, _> =
        Session::restore(&dir).program("sssp", Sssp).open().unwrap();
    assert_eq!(
        restored.retained_query::<Sssp>("sssp").unwrap(),
        Some(&0),
        "restore resumes the CHECKPOINTED query, not the later in-memory switch"
    );
    assert_eq!(
        restored.query::<Sssp>("sssp", &0).unwrap(),
        from0_after,
        "the logged delta replayed onto the checkpointed query"
    );
    assert_eq!(
        restored.query::<Sssp>("sssp", &5).unwrap(),
        from5_after,
        "re-querying the newer value is one correct cold run"
    );
    assert_ne!(from5, from5_after, "the delta actually changed query 5's answer");
    std::fs::remove_dir_all(&dir).ok();
}

/// Checkpoint + restore reclaim epochs stranded by a crash in the
/// flip-then-cleanup window: only the manifest's generation survives.
#[test]
fn stale_epoch_files_are_swept() {
    let g = grape_aap::graph::generate::small_world(50, 2, 0.2, 2);
    let dir = scratch_dir("sweep");
    let mut session = Session::builder(g)
        .partition(edge_cut(2))
        .program("sssp", Sssp)
        .durable(&dir)
        .unwrap()
        .open()
        .unwrap();
    session.query::<Sssp>("sssp", &0).unwrap();
    session.checkpoint().unwrap(); // epoch 1
    drop(session);
    // Simulate the crash window: plant a stranded old generation.
    std::fs::write(dir.join("graph.0.snap"), b"stranded").unwrap();
    std::fs::write(dir.join("state.sssp.0.snap"), b"stranded").unwrap();
    std::fs::write(dir.join("deltas.0.dlog"), b"stranded").unwrap();

    let _restored: Session<(), u32, _> =
        Session::restore(&dir).program("sssp", Sssp).open().unwrap();
    assert!(!dir.join("graph.0.snap").exists(), "stale epoch swept at restore");
    assert!(!dir.join("state.sssp.0.snap").exists());
    assert!(!dir.join("deltas.0.dlog").exists());
    assert!(dir.join("graph.1.snap").exists(), "current epoch untouched");
    std::fs::remove_dir_all(&dir).ok();
}
