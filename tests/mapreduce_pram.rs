//! Integration + property tests for the Theorem 4 simulations.

use grape_aap::mapreduce::jobs::WordCount;
use grape_aap::mapreduce::pram::prefix_sum;
use grape_aap::mapreduce::{run_mapreduce, MrConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn prefix_sum_matches_scan(values in prop::collection::vec(-100i64..100, 0..80),
                               workers in 1usize..7) {
        let expect: Vec<i64> = values
            .iter()
            .scan(0i64, |acc, &v| { *acc += v; Some(*acc) })
            .collect();
        prop_assert_eq!(prefix_sum(&values, workers), expect);
    }

    #[test]
    fn word_count_is_partition_invariant(docs in prop::collection::vec("[a-c ]{0,24}", 1..8),
                                         w1 in 1usize..6, w2 in 1usize..6) {
        let job1 = WordCount { docs: docs.clone() };
        let job2 = WordCount { docs };
        let (a, _) = run_mapreduce(&job1, &MrConfig { workers: w1, threads: 2 });
        let (b, _) = run_mapreduce(&job2, &MrConfig { workers: w2, threads: 2 });
        prop_assert_eq!(a, b, "result must not depend on the processor count");
    }
}

#[test]
fn mapreduce_cost_stays_linear_in_pairs() {
    // "Optimal simulation": shipping at most one tuple per emitted pair.
    let docs: Vec<String> = (0..50).map(|i| format!("w{} w{} w{}", i % 7, i % 5, i % 3)).collect();
    let total_words = 150;
    let (_, stats) = run_mapreduce(&WordCount { docs }, &MrConfig { workers: 8, threads: 4 });
    assert!(
        stats.total_updates() <= total_words,
        "shuffle shipped {} batches for {total_words} pairs",
        stats.total_updates()
    );
}
