//! Durable-restart equivalence — the acceptance property of the
//! snapshot subsystem: for a stream of graph deltas,
//!
//! ```text
//! cold run on the final graph
//!   == continuous process (run_retained at t0, then run_incremental per delta)
//!   == restarted process (snapshot at t0 → load → replay the delta log)
//! ```
//!
//! for SSSP and CC, on edge-cut and vertex-cut partitions. The streams
//! deliberately mix monotone batches (inserts, weight decreases) with
//! non-monotone ones (removals, weight increases), so both warm
//! strategies — `warm-decrease` and the affected-region `warm-increase`
//! — cross the snapshot boundary. Partition/mode scaffolding comes from
//! `aap-testkit`.

use aap_testkit::{build_parts, test_opts, PartitionKind};
use grape_aap::delta::generate::insert_batch;
use grape_aap::delta::{
    apply_to_graph, replay, run_incremental, DeltaBuilder, GraphDelta, WarmStrategy,
};
use grape_aap::graph::{generate, Graph};
use grape_aap::prelude::*;
use grape_aap::runtime::pie::WarmStart;
use grape_aap::runtime::RunState;
use grape_aap::snapshot::{restore_engine, save_engine, Codec, DeltaLog};
use std::path::PathBuf;

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("aap_equiv_{}_{name}", std::process::id()))
}

/// A delta stream over `g`: warm inserts, a removal batch
/// (`warm-increase`), a weight increase (`warm-increase` for SSSP), a
/// vertex add wired into the graph, then one more warm insert batch.
fn delta_stream(g: &Graph<(), u32>) -> Vec<GraphDelta<(), u32>> {
    let n = g.num_vertices() as u32;
    let mut deltas = Vec::new();
    deltas.push(insert_batch(g, 12, 9, 0xA11CE));

    let mut b = DeltaBuilder::new();
    let mut removed = 0;
    for v in (3..n).step_by((n as usize / 5).max(1)) {
        if let Some(&t) = g.neighbors(v).first() {
            b.remove_edge(v, t);
            removed += 1;
            if removed == 3 {
                break;
            }
        }
    }
    b.remove_vertex(n - 2);
    deltas.push(b.build());

    let mut b = DeltaBuilder::new();
    let (u, w) = (1u32, 2u32);
    b.set_weight(u, w, 1_000);
    b.add_vertex(n, ());
    b.add_edge(0, n, 3);
    deltas.push(b.build());

    deltas.push(insert_batch(g, 8, 5, 0xBEE));
    deltas
}

fn check_equivalence<P>(prog: &P, q: &P::Query, name: &str, kind: PartitionKind, g0: Graph<(), u32>)
where
    P: WarmStart<(), u32>,
    P::Out: PartialEq + std::fmt::Debug,
    P::State: Codec + Clone,
{
    let m = 4;

    // --- continuous process ---
    let mut engine = Engine::new(build_parts(&g0, kind, m), test_opts(Mode::aap()));
    let (out0, mut state): (_, RunState<P::State>) = {
        let (r, s) = engine.run_retained(prog, q);
        (r.out, s)
    };
    let snap_path = tmp(&format!("{name}.snap"));
    let log_path = tmp(&format!("{name}.dlog"));
    save_engine(&snap_path, &engine, Some(&state)).unwrap();
    let mut log = DeltaLog::create(&log_path).unwrap();

    let deltas = delta_stream(&g0);
    let mut g_cur = g0;
    let mut strategies = Vec::new();
    let mut last_out = None;
    for delta in &deltas {
        let r = run_incremental(&mut engine, prog, q, delta, &mut state);
        // The log records what was *applied* — the driver hands it back.
        assert!(!r.applied.summary.is_empty(), "stream batches all mutate something");
        strategies.push(r.strategy);
        log.write_delta(delta).unwrap();
        g_cur = apply_to_graph(&g_cur, delta);
        last_out = Some(r.out);
    }
    drop(log);
    let continuous_out = last_out.expect("stream is non-empty");
    assert!(
        strategies.contains(&WarmStrategy::WarmDecrease)
            && strategies.contains(&WarmStrategy::WarmIncrease),
        "stream must exercise both warm strategies, got {strategies:?}"
    );
    assert!(
        !strategies.contains(&WarmStrategy::Cold),
        "SSSP/CC deletion batches must not cold-fall-back: {strategies:?}"
    );

    // --- cold run on the final graph ---
    let cold_out =
        Engine::new(build_parts(&g_cur, kind, m), test_opts(Mode::aap())).run(prog, q).out;
    assert_eq!(cold_out, continuous_out, "{name}: continuous != cold on final graph");
    assert_ne!(cold_out, out0, "{name}: the stream must actually change the answer");

    // --- restarted process: load → attach → replay the log ---
    let (mut engine2, attached) =
        restore_engine::<(), u32, P::State, _>(&snap_path, test_opts(Mode::aap())).unwrap();
    let (mut state2, remaps) = attached.expect("snapshot carried state");
    assert!(
        remaps.iter().all(|r| r.is_identity()),
        "{name}: an unmodified snapshot re-attaches remap-free"
    );
    let logged = DeltaLog::replay::<(), u32, _>(&log_path).unwrap();
    assert_eq!(logged.len(), deltas.len());
    let replayed = replay(&mut engine2, prog, q, &logged, &mut state2).unwrap();
    assert_eq!(replayed.out, continuous_out, "{name}: restarted != continuous");

    // The restarted process keeps serving: an empty delta replays the
    // fixpoint with zero messages, from the replayed state.
    let empty = DeltaBuilder::new().build();
    let settle = run_incremental(&mut engine2, prog, q, &empty, &mut state2);
    assert_eq!(settle.out, continuous_out);
    assert_eq!(settle.stats.total_updates(), 0, "{name}: replayed state is at the fixpoint");

    std::fs::remove_file(&snap_path).ok();
    std::fs::remove_file(&log_path).ok();
}

#[test]
fn sssp_edge_cut_restart_equivalence() {
    let g = generate::rmat(9, 6, true, 0x51);
    check_equivalence(&Sssp, &0, "sssp_ec", PartitionKind::EdgeCut, g);
}

#[test]
fn sssp_vertex_cut_restart_equivalence() {
    let g = generate::small_world(300, 2, 0.15, 0x52);
    check_equivalence(&Sssp, &0, "sssp_vc", PartitionKind::VertexCut, g);
}

#[test]
fn cc_edge_cut_restart_equivalence() {
    let g = generate::small_world(400, 2, 0.1, 0x53);
    check_equivalence(&ConnectedComponents, &(), "cc_ec", PartitionKind::EdgeCut, g);
}

#[test]
fn cc_vertex_cut_restart_equivalence() {
    let g = generate::small_world(250, 2, 0.2, 0x54);
    check_equivalence(&ConnectedComponents, &(), "cc_vc", PartitionKind::VertexCut, g);
}
