//! Property test: the dense routing fast path (precomputed routing tables,
//! stamp-dedup, per-destination buffers) delivers **identical** messages to
//! a straightforward reference implementation built on hash maps over
//! global vertex ids — across random graphs, edge-cut and vertex-cut
//! partitions, and both idempotent (`min`) and additive (`+`) aggregators.
//! The additive aggregator is the sharp one: any dropped, duplicated, or
//! mis-addressed update changes a sum where a `min` might mask it.

use aap_testkit::arb_graph;
use grape_aap::graph::partition::{
    build_fragments_n, build_fragments_vertex_cut, hash_partition, vertex_cut_partition,
};
use grape_aap::graph::{Fragment, Graph, Route};
use grape_aap::prelude::*;
use grape_aap::runtime::inbox::Inbox;
use grape_aap::runtime::pie::route_updates;
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;

/// How the test programs aggregate duplicate values.
#[derive(Clone, Copy)]
enum Aggr {
    Min,
    Sum,
}

struct TestProg(Aggr);

impl PieProgram<(), u32> for TestProg {
    type Query = ();
    type Val = u64;
    type State = ();
    type Out = ();

    fn combine(&self, a: &mut u64, b: u64) -> bool {
        match self.0 {
            Aggr::Min => {
                if b < *a {
                    *a = b;
                    true
                } else {
                    false
                }
            }
            Aggr::Sum => {
                *a = a.wrapping_add(b);
                true
            }
        }
    }

    fn peval(&self, _: &(), _: &Fragment<(), u32>, _: &mut UpdateCtx<u64>) {}

    fn inceval(
        &self,
        _: &(),
        _: &Fragment<(), u32>,
        _: &mut (),
        _: &mut Messages<u64>,
        _: &mut UpdateCtx<u64>,
    ) {
    }

    fn assemble(&self, _: &(), _: &[Arc<Fragment<(), u32>>], _: Vec<()>) {}
}

/// Reference routing: hash/tree maps over *global* ids, the shape the seed
/// implementation had. Returns per-destination update lists translated to
/// the receiver's local ids and sorted — the exact content a [`Batch`]
/// must carry.
fn reference_route(
    prog: &TestProg,
    frags: &[Fragment<(), u32>],
    i: usize,
    updates: &[(LocalId, u64)],
) -> BTreeMap<FragId, Vec<(LocalId, u64)>> {
    let frag = &frags[i];
    let mut per_dest: BTreeMap<FragId, BTreeMap<u32, u64>> = BTreeMap::new();
    for &(l, v) in updates {
        let g = frag.global(l);
        let dests: Vec<FragId> = match frag.route(l) {
            Route::Owner(o) => vec![o],
            Route::Mirrors(ms) => ms.to_vec(),
        };
        for d in dests {
            per_dest
                .entry(d)
                .or_default()
                .entry(g)
                .and_modify(|a| {
                    prog.combine(a, v);
                })
                .or_insert(v);
        }
    }
    per_dest
        .into_iter()
        .map(|(d, m)| {
            let mut v: Vec<(LocalId, u64)> = m
                .into_iter()
                .map(|(g, val)| (frags[d as usize].local(g).expect("copy exists"), val))
                .collect();
            v.sort_unstable_by_key(|&(l, _)| l);
            (d, v)
        })
        .collect()
}

/// Reference drain: aggregate every delivered update per receiver-local
/// vertex with `faggr`, sorted by local id.
fn reference_drain(prog: &TestProg, delivered: &[Vec<(LocalId, u64)>]) -> Vec<(LocalId, u64)> {
    let mut agg: BTreeMap<LocalId, u64> = BTreeMap::new();
    for batch in delivered {
        for &(l, v) in batch {
            agg.entry(l)
                .and_modify(|a| {
                    prog.combine(a, v);
                })
                .or_insert(v);
        }
    }
    agg.into_iter().collect()
}

/// Per-fragment pseudo-random update lists, with deliberate duplicates so
/// the sender-side dedup/combine is exercised.
fn gen_updates(frag: &Fragment<(), u32>, seed: u64) -> Vec<(LocalId, u64)> {
    let n = frag.local_count();
    if n == 0 {
        return Vec::new();
    }
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let count = (next() % (2 * n as u64 + 1)) as usize;
    (0..count).map(|_| ((next() % n as u64) as LocalId, next() % 1000)).collect()
}

fn check_equivalence(g: &Graph<(), u32>, frags: &[Fragment<(), u32>], aggr: Aggr, seed: u64) {
    let prog = TestProg(aggr);
    let m = frags.len();
    let mut inboxes: Vec<Inbox<u64>> = (0..m).map(|_| Inbox::default()).collect();
    let mut delivered_ref: Vec<Vec<Vec<(LocalId, u64)>>> = vec![Vec::new(); m];

    for (i, frag) in frags.iter().enumerate() {
        let updates = gen_updates(frag, seed ^ (i as u64) << 7);
        // Dense fast path.
        let batches = route_updates(&prog, frag, 1, updates.clone());
        // Reference.
        let expect = reference_route(&prog, frags, i, &updates);

        let got: BTreeMap<FragId, Vec<(LocalId, u64)>> =
            batches.iter().map(|(d, b)| (*d, b.updates.clone())).collect();
        assert_eq!(got, expect, "sender {i}: dense batches differ from reference");
        // Batches must be sorted by destination and carry the right tags.
        assert!(batches.windows(2).all(|w| w[0].0 < w[1].0));
        for (d, b) in batches {
            assert_eq!(b.src, frag.id());
            assert_eq!(b.round, 1);
            delivered_ref[d as usize].push(b.updates.clone());
            inboxes[d as usize].push(b);
        }
        let _ = g; // graph kept alive for debugging context
    }

    // Drain side: dense drain == reference aggregation, byte for byte.
    for (j, inbox) in inboxes.iter_mut().enumerate() {
        let (msgs, info) = inbox.drain(&prog, &frags[j]);
        let expect = reference_drain(&prog, &delivered_ref[j]);
        assert_eq!(msgs, expect, "receiver {j}: dense drain differs from reference");
        assert_eq!(info.batches, delivered_ref[j].len());
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: aap_testkit::cases(24), ..ProptestConfig::default() })]

    #[test]
    fn dense_routing_matches_reference_edge_cut(g in arb_graph(), m in 1usize..9,
                                                seed in 0u64..1000) {
        let frags = build_fragments_n(&g, &hash_partition(&g, m), m);
        check_equivalence(&g, &frags, Aggr::Sum, seed);
        check_equivalence(&g, &frags, Aggr::Min, seed);
    }

    #[test]
    fn dense_routing_matches_reference_vertex_cut(g in arb_graph(), m in 1usize..8,
                                                  seed in 0u64..1000) {
        let frags = build_fragments_vertex_cut(&g, &vertex_cut_partition(&g, m));
        check_equivalence(&g, &frags, Aggr::Sum, seed);
        check_equivalence(&g, &frags, Aggr::Min, seed);
    }

    #[test]
    fn routing_table_agrees_with_route(g in arb_graph(), m in 1usize..9) {
        let frags = build_fragments_n(&g, &hash_partition(&g, m), m);
        for f in &frags {
            let rt = f.routing();
            for l in f.local_vertices() {
                let (slots, remotes) = rt.fanout(l);
                let expect: Vec<FragId> = match f.route(l) {
                    Route::Owner(o) => vec![o],
                    Route::Mirrors(ms) => ms.to_vec(),
                };
                let got: Vec<FragId> =
                    slots.iter().map(|&s| rt.dests()[s as usize]).collect();
                prop_assert_eq!(&got, &expect, "fanout destinations at local {}", l);
                // Every remote id maps back to the same global vertex.
                for (&d, &r) in got.iter().zip(remotes) {
                    prop_assert_eq!(frags[d as usize].global(r), f.global(l));
                }
            }
        }
    }
}
