//! Cross-crate integration tests: every PIE algorithm, under every
//! execution mode, on assorted graphs and partition strategies, must agree
//! with its sequential reference — the end-to-end consequence of
//! Theorem 2 (Church–Rosser + correctness under T1–T3).

use grape_aap::algos::{seq, Bfs, ConnectedComponents, PageRank, Sssp};
use grape_aap::graph::partition::{
    build_fragments, build_fragments_n, build_fragments_vertex_cut, hash_partition, ldg_partition,
    range_partition, skewed_partition, vertex_cut_partition,
};
use grape_aap::graph::{generate, Graph};
use grape_aap::prelude::*;

fn modes() -> Vec<Mode> {
    vec![
        Mode::Bsp,
        Mode::Ap,
        Mode::Ssp { c: 1 },
        Mode::Ssp { c: 4 },
        Mode::aap(),
        Mode::Aap(AapConfig { l_floor: 3.0, ..AapConfig::default() }),
        Mode::Aap(AapConfig { staleness_bound: Some(2), ..AapConfig::default() }),
        Mode::Hsync(HsyncConfig::default()),
    ]
}

fn engine(frags: Vec<Fragment<(), u32>>, mode: Mode) -> Engine<(), u32> {
    Engine::new(frags, EngineOpts { threads: 4, mode, max_rounds: Some(500_000) })
}

fn graphs() -> Vec<(&'static str, Graph<(), u32>)> {
    vec![
        ("small_world", generate::small_world(300, 3, 0.1, 1)),
        ("rmat", generate::rmat(9, 8, true, 2)),
        ("lattice", generate::lattice2d(18, 18, 3)),
        ("uniform", generate::uniform(250, 1000, true, 4)),
    ]
}

#[test]
fn sssp_agrees_with_dijkstra_everywhere() {
    for (name, g) in graphs() {
        let expect = seq::dijkstra(&g, 1);
        for mode in modes() {
            let frags = build_fragments(&g, &hash_partition(&g, 6));
            let run = engine(frags, mode.clone()).run(&Sssp, &1);
            assert_eq!(run.out, expect, "graph {name}, mode {mode:?}");
            assert!(!run.stats.aborted);
        }
    }
}

#[test]
fn cc_agrees_with_union_find_everywhere() {
    for (name, g) in graphs() {
        let expect = seq::connected_components(&g);
        for mode in modes() {
            let frags = build_fragments(&g, &hash_partition(&g, 6));
            let run = engine(frags, mode.clone()).run(&ConnectedComponents, &());
            assert_eq!(run.out, expect, "graph {name}, mode {mode:?}");
        }
    }
}

#[test]
fn bfs_agrees_with_reference_everywhere() {
    let g = generate::small_world(260, 2, 0.08, 9);
    let expect = seq::bfs(&g, 7);
    for mode in modes() {
        let frags = build_fragments(&g, &hash_partition(&g, 5));
        let run = engine(frags, mode.clone()).run(&Bfs, &7);
        assert_eq!(run.out, expect, "mode {mode:?}");
    }
}

#[test]
fn pagerank_agrees_within_tolerance_everywhere() {
    let g = generate::rmat(8, 8, true, 5);
    let pr = PageRank { damping: 0.85, epsilon: 1e-8 };
    let expect = seq::pagerank_delta(&g, 0.85, 1e-8);
    for mode in modes() {
        let frags = build_fragments(&g, &hash_partition(&g, 5));
        let run = engine(frags, mode.clone()).run(&pr, &());
        for (v, (a, b)) in run.out.iter().zip(&expect).enumerate() {
            assert!((a - b).abs() < 1e-3, "mode {mode:?}, vertex {v}: {a} vs {b}");
        }
    }
}

#[test]
fn every_partition_strategy_gives_the_same_answers() {
    let g = generate::small_world(400, 3, 0.15, 11);
    let expect_cc = seq::connected_components(&g);
    let expect_d = seq::dijkstra(&g, 0);
    let partitions: Vec<(&str, Vec<Fragment<(), u32>>)> = vec![
        ("hash", build_fragments(&g, &hash_partition(&g, 7))),
        ("range", build_fragments(&g, &range_partition(&g, 7))),
        ("ldg", build_fragments(&g, &ldg_partition(&g, 7, 1.2))),
        ("skewed", build_fragments(&g, &skewed_partition(&g, 7, 5.0))),
        ("vertex_cut", build_fragments_vertex_cut(&g, &vertex_cut_partition(&g, 7))),
        ("single", build_fragments_n(&g, &vec![0; g.num_vertices()], 1)),
    ];
    for (name, frags) in partitions {
        let run = engine(frags, Mode::aap()).run(&ConnectedComponents, &());
        assert_eq!(run.out, expect_cc, "partition {name}");
    }
    // SSSP across strategies too (rebuild fragments; engines are per-partition).
    for (name, frags) in [
        ("hash", build_fragments(&g, &hash_partition(&g, 7))),
        ("skewed", build_fragments(&g, &skewed_partition(&g, 7, 5.0))),
        ("vertex_cut", build_fragments_vertex_cut(&g, &vertex_cut_partition(&g, 7))),
    ] {
        let run = engine(frags, Mode::aap()).run(&Sssp, &0);
        assert_eq!(run.out, expect_d, "partition {name}");
    }
}

#[test]
fn engine_is_reusable_across_queries() {
    let g = generate::lattice2d(15, 15, 21);
    let frags = build_fragments(&g, &hash_partition(&g, 4));
    let engine = Engine::new(frags, EngineOpts::default());
    for src in [0u32, 10, 100, 224] {
        assert_eq!(engine.run(&Sssp, &src).out, seq::dijkstra(&g, src), "src {src}");
    }
}

#[test]
fn stats_are_plausible() {
    let g = generate::rmat(9, 8, true, 13);
    let frags = build_fragments(&g, &hash_partition(&g, 6));
    let run = Engine::new(frags, EngineOpts::default()).run(&ConnectedComponents, &());
    let s = &run.stats;
    assert_eq!(s.workers.len(), 6);
    assert!(s.total_rounds() >= 6, "every worker ran PEval");
    assert!(s.total_bytes() > 0);
    assert!(s.total_updates() > 0);
    assert!(s.makespan > 0.0);
    assert!(s.total_compute() > 0.0);
    // Each worker's batches_in equals someone's batches_out in total.
    let bin: u64 = s.workers.iter().map(|w| w.batches_in).sum();
    let bout: u64 = s.workers.iter().map(|w| w.batches_out).sum();
    assert_eq!(bin, bout);
    let uin: u64 = s.workers.iter().map(|w| w.updates_in).sum();
    let uout: u64 = s.workers.iter().map(|w| w.updates_out).sum();
    assert_eq!(uin, uout);
}

#[test]
fn max_rounds_safety_valve_aborts() {
    /// A program that ping-pongs forever (violates T1/T2 on purpose).
    struct Forever;
    impl PieProgram<(), u32> for Forever {
        type Query = ();
        type Val = u64;
        type State = u64;
        type Out = ();
        fn combine(&self, a: &mut u64, b: u64) -> bool {
            *a = b;
            true
        }
        fn peval(&self, _: &(), f: &Fragment<(), u32>, ctx: &mut UpdateCtx<u64>) -> u64 {
            if let Some(b) = f.inner_out().first() {
                ctx.send(*b, 1);
            }
            0
        }
        fn inceval(
            &self,
            _: &(),
            f: &Fragment<(), u32>,
            st: &mut u64,
            msgs: &mut Messages<u64>,
            ctx: &mut UpdateCtx<u64>,
        ) {
            *st += msgs.len() as u64;
            if let Some(b) = f.inner_out().first() {
                ctx.send(*b, *st); // always "changes": never converges
            }
        }
        fn assemble(&self, _: &(), _: &[std::sync::Arc<Fragment<(), u32>>], _: Vec<u64>) {}
    }
    let g = generate::small_world(40, 2, 0.0, 1);
    let frags = build_fragments(&g, &hash_partition(&g, 4));
    let engine =
        Engine::new(frags, EngineOpts { threads: 2, mode: Mode::Ap, max_rounds: Some(50) });
    let run = engine.run(&Forever, &());
    assert!(run.stats.aborted);
}
