//! The two runtimes must agree: the discrete-event simulator and the
//! multithreaded engine execute the same PIE programs over the same
//! fragments, so their *outputs* must be identical (times differ — one is
//! virtual, one is wall-clock).

use grape_aap::algos::{seq, Bfs, ConnectedComponents, PageRank, Sssp};
use grape_aap::graph::partition::{build_fragments, hash_partition};
use grape_aap::graph::{generate, Graph};
use grape_aap::prelude::*;

fn frags(g: &Graph<(), u32>, m: usize) -> Vec<Fragment<(), u32>> {
    build_fragments(g, &hash_partition(g, m))
}

#[test]
fn sssp_same_answer_in_both_runtimes() {
    let g = generate::rmat(9, 8, true, 44);
    let expect = seq::dijkstra(&g, 2);
    for mode in [Mode::Bsp, Mode::Ap, Mode::aap()] {
        let threaded = Engine::new(
            frags(&g, 5),
            EngineOpts { threads: 4, mode: mode.clone(), max_rounds: Some(100_000) },
        )
        .run(&Sssp, &2);
        let simulated =
            SimEngine::new(frags(&g, 5), SimOpts { mode: mode.clone(), ..SimOpts::default() })
                .expect("valid opts")
                .run(&Sssp, &2);
        assert_eq!(threaded.out, expect, "threaded, {mode:?}");
        assert_eq!(simulated.out, expect, "simulated, {mode:?}");
    }
}

#[test]
fn cc_same_answer_in_both_runtimes() {
    let g = generate::small_world(300, 2, 0.1, 45);
    let expect = seq::connected_components(&g);
    for mode in [Mode::Bsp, Mode::Ssp { c: 2 }, Mode::aap()] {
        let t = Engine::new(
            frags(&g, 6),
            EngineOpts { threads: 4, mode: mode.clone(), max_rounds: Some(100_000) },
        )
        .run(&ConnectedComponents, &());
        let s = SimEngine::new(frags(&g, 6), SimOpts { mode, ..SimOpts::default() })
            .expect("valid opts")
            .run(&ConnectedComponents, &());
        assert_eq!(t.out, expect);
        assert_eq!(s.out, expect);
    }
}

#[test]
fn bfs_same_answer_in_both_runtimes() {
    let g = generate::lattice2d(14, 14, 46);
    let expect = seq::bfs(&g, 5);
    let t = Engine::new(frags(&g, 4), EngineOpts::default()).run(&Bfs, &5);
    let s = SimEngine::new(frags(&g, 4), SimOpts::default()).expect("valid opts").run(&Bfs, &5);
    assert_eq!(t.out, expect);
    assert_eq!(s.out, expect);
}

#[test]
fn pagerank_close_in_both_runtimes() {
    let g = generate::uniform(200, 1200, true, 47);
    let pr = PageRank { damping: 0.85, epsilon: 1e-8 };
    let expect = seq::pagerank_delta(&g, 0.85, 1e-8);
    let t = Engine::new(frags(&g, 4), EngineOpts::default()).run(&pr, &());
    let s = SimEngine::new(frags(&g, 4), SimOpts::default()).expect("valid opts").run(&pr, &());
    for (v, &e) in expect.iter().enumerate() {
        assert!((t.out[v] - e).abs() < 1e-3, "threaded v{v}");
        assert!((s.out[v] - e).abs() < 1e-3, "sim v{v}");
    }
}

#[test]
fn sim_stats_are_deterministic_but_threaded_times_vary() {
    let g = generate::rmat(8, 6, true, 48);
    let run = || {
        SimEngine::new(frags(&g, 5), SimOpts::default())
            .expect("valid opts")
            .run(&ConnectedComponents, &())
    };
    let (a, b) = (run(), run());
    assert_eq!(a.stats.makespan, b.stats.makespan);
    assert_eq!(a.stats.total_updates(), b.stats.total_updates());
    assert_eq!(a.stats.total_rounds(), b.stats.total_rounds());
    assert_eq!(a.stats.total_bytes(), b.stats.total_bytes());
}
