//! Trace-format contract: everything the instrumented layers emit must
//! export as Chrome trace-event JSON that survives a round trip through
//! the bench harness's independent parser/checker
//! ([`aap_bench::tracecheck`]) — balanced `B`/`E` nesting per
//! `(pid, tid)` track, monotone timestamps per track, every expected
//! process present — for the threaded engine AND the simulator backend,
//! on scripted workloads and on proptest-generated random runs.

use aap_bench::tracecheck::{check_chrome_trace, TraceCheck};
use aap_testkit::{adversarial_stream, arb_graph, cases};
use grape_aap::graph::Graph;
use grape_aap::prelude::*;
use grape_aap::trace::{chrome_trace_json, pid};
use proptest::prelude::*;
use std::sync::Arc;

/// Build a traced session on `g`, run [`drive`], export, and validate.
fn run_and_check(g: &Graph<(), u32>, deltas: &[GraphDelta<(), u32>], sim: bool) -> TraceCheck {
    let rec = Arc::new(Recorder::with_capacity(1 << 18));
    let builder = Session::builder(g.clone())
        .partition(edge_cut(3))
        .mode(Mode::aap())
        .program("sssp", Sssp)
        .trace(Arc::clone(&rec));
    if sim {
        drive(builder.open_sim().expect("sim session"), deltas);
    } else {
        drive(builder.open().expect("session"), deltas);
    }
    assert_eq!(rec.dropped(), 0, "recorder window too small");
    let json = chrome_trace_json(&rec.events());
    check_chrome_trace(&json).expect("exported trace must round-trip the bench parser")
}

/// Run the serving workload against `session` (queries incl. cache
/// hits, an admission window, delta applies), then drop it.
fn drive<B: grape_aap::session::Backend<(), u32>>(
    mut session: Session<(), u32, B>,
    deltas: &[GraphDelta<(), u32>],
) {
    let reader = session.reader();
    for (i, delta) in deltas.iter().enumerate() {
        for q in [0u32, 1, 0] {
            session.query::<Sssp>("sssp", &q).expect("query");
        }
        reader.request::<Sssp>("sssp", &(i as u32 % 3)).expect("request");
        session.serve_admitted().expect("admission");
        session.apply(delta).expect("apply");
    }
}

#[test]
fn threaded_engine_capture_round_trips_the_bench_parser() {
    let g = grape_aap::graph::generate::rmat(10, 8, true, 5);
    let deltas: Vec<_> =
        (0..3u64).map(|i| grape_aap::delta::generate::insert_batch(&g, 32, 9, i)).collect();
    let check = run_and_check(&g, &deltas, false);

    for p in [pid::ENGINE, pid::DELTA, pid::SESSION] {
        assert!(check.pids.contains(&p), "pid {p} missing: {:?}", check.pids);
    }
    // Per-worker round spans, strategy instants, per-fragment repacks,
    // session spans and counter series — the acceptance set.
    for name in
        ["round", "eval0", "inceval", "strategy", "repack", "query", "apply", "publications"]
    {
        assert!(check.has(name), "{name:?} missing from {:?}", check.names);
    }
    assert!(check.spans > 0 && check.instants > 0 && check.counters > 0);
    // Several engine workers → several (pid, tid) tracks under ENGINE.
    assert!(check.tracks > 3, "expected per-worker tracks, got {}", check.tracks);
}

#[test]
fn sim_backend_capture_is_well_formed_across_consecutive_runs() {
    let g = grape_aap::graph::generate::small_world(400, 3, 0.2, 11);
    let deltas: Vec<_> =
        (0..4u64).map(|i| grape_aap::delta::generate::insert_batch(&g, 16, 9, 100 + i)).collect();
    // Each query/apply re-runs the simulator, which re-emits a fresh
    // virtual-time timeline; the checker's per-track monotonicity proves
    // the captures are laid end-to-end rather than overlapping at ts 0.
    let check = run_and_check(&g, &deltas, true);

    assert!(check.pids.contains(&pid::SIM), "sim pid missing: {:?}", check.pids);
    assert!(check.pids.contains(&pid::SESSION));
    for name in ["compute", "query", "apply", "strategy"] {
        assert!(check.has(name), "{name:?} missing from {:?}", check.names);
    }
    assert!(check.counters > 0, "session counter tracks missing");
}

proptest! {
    #![proptest_config(ProptestConfig { cases: cases(6), ..ProptestConfig::default() })]

    /// Random small graphs × adversarial delta streams (insertions,
    /// deletions, weight changes — both warm-strategy directions) on
    /// both backends: whatever path the run takes, the export must
    /// parse, balance, and stay monotone per track.
    #[test]
    fn random_runs_export_valid_traces(g in arb_graph(), seed in 0u64..500) {
        let deltas = adversarial_stream(&g, 3, seed);
        let threaded = run_and_check(&g, &deltas, false);
        prop_assert!(threaded.pids.contains(&pid::ENGINE));
        prop_assert!(threaded.has("query") && threaded.has("apply"));
        let sim = run_and_check(&g, &deltas, true);
        prop_assert!(sim.pids.contains(&pid::SIM));
        prop_assert!(sim.counters > 0);
    }
}
