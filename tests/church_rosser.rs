//! Property-based Church–Rosser tests (§4, Theorem 2).
//!
//! The theorem: under T1 (finite domains), T2 (contracting IncEval) and
//! T3 (monotonic IncEval), *every* asynchronous run converges to the same
//! fixpoint as the BSP run. We attack this empirically from two sides:
//!
//! * the threaded engine under every mode (true OS-level nondeterminism);
//! * the simulator under *randomised* worker speeds and latencies, which
//!   explores radically different interleavings deterministically.

use grape_aap::algos::{seq, ConnectedComponents, Sssp};
use grape_aap::graph::partition::{build_fragments_n, hash_partition, skewed_partition};
use grape_aap::graph::{generate, Graph};
use grape_aap::prelude::*;
use grape_aap::runtime::theory;
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = Graph<(), u32>> {
    (20usize..150, 1usize..4, 0u64..1000)
        .prop_map(|(n, k, seed)| generate::small_world(n, k.min(n - 1).max(1), 0.2, seed))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: aap_testkit::cases(24), ..ProptestConfig::default() })]

    #[test]
    fn cc_fixpoint_is_schedule_independent_in_sim(
        g in arb_graph(),
        m in 2usize..8,
        seed in 0u64..500,
    ) {
        let expect = seq::connected_components(&g);
        // Randomised speeds and latency: different seeds = different
        // asynchronous schedules.
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        for _ in 0..3 {
            let speed: Vec<f64> = (0..m).map(|_| rng.gen_range(0.5..4.0)).collect();
            let latency = rng.gen_range(0.01..3.0);
            let frags = build_fragments_n(&g, &hash_partition(&g, m), m);
            let sim = SimEngine::new(frags, SimOpts {
                mode: Mode::aap(),
                latency,
                cost: CostModel::skewed_work(speed),
                max_rounds: Some(100_000),
                ..SimOpts::default()
            }).expect("valid opts");
            let out = sim.run(&ConnectedComponents, &());
            prop_assert_eq!(&out.out, &expect);
        }
    }

    #[test]
    fn sssp_fixpoint_is_schedule_independent_in_sim(
        g in arb_graph(),
        m in 2usize..8,
        src in 0u32..20,
        seed in 0u64..500,
    ) {
        let expect = seq::dijkstra(&g, src);
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed ^ 0xD1);
        for mode in [Mode::Ap, Mode::aap(), Mode::Ssp { c: rng.gen_range(0..5) }] {
            let speed: Vec<f64> = (0..m).map(|_| rng.gen_range(0.5..4.0)).collect();
            let frags = build_fragments_n(&g, &skewed_partition(&g, m.max(2), 3.0), m.max(2));
            let sim = SimEngine::new(frags, SimOpts {
                mode,
                latency: rng.gen_range(0.01..2.0),
                cost: CostModel::skewed_work(speed),
                max_rounds: Some(100_000),
                ..SimOpts::default()
            }).expect("valid opts");
            let out = sim.run(&Sssp, &src);
            prop_assert_eq!(&out.out, &expect);
        }
    }
}

/// The schedule-fuzz matrix (Theorem 2 under *seeded hostile*
/// interleavings): all five modes × both partitionings, each cell
/// re-solved under every fuzz seed — wake-order shuffles, bounded
/// delivery reorder, per-worker speed skew. Every fuzzed fixpoint must
/// be byte-identical to the canonical schedule's (itself pinned to the
/// sequential answer). Tier-1 sweeps 8 seeds; `AAP_FUZZ_SEEDS` deepens
/// the sweep nightly. Any divergence names its reproducing seed.
#[test]
fn fuzzed_schedules_reach_the_canonical_fixpoint_in_every_mode() {
    use aap_testkit::{all_modes, build_parts, fuzz_seeds, PARTITIONS};
    let g = generate::small_world(160, 2, 0.15, 0xC0);
    let expect = seq::dijkstra(&g, 1);
    let seeds = fuzz_seeds(8);
    for kind in PARTITIONS {
        for mode in all_modes() {
            let opts = SimOpts { mode: mode.clone(), ..SimOpts::default() };
            let canonical = SimEngine::new(build_parts(&g, kind, 4), opts.clone())
                .expect("valid opts")
                .run(&Sssp, &1);
            assert_eq!(canonical.out, expect, "[{kind:?}, {mode:?}] canonical run is wrong");
            for &seed in &seeds {
                let fuzzed = SimEngine::new(
                    build_parts(&g, kind, 4),
                    opts.clone().schedule(ScheduleFuzz::seeded(seed)),
                )
                .expect("valid opts")
                .run(&Sssp, &1);
                assert_eq!(
                    fuzzed.out, canonical.out,
                    "[{kind:?}, {mode:?}] fuzzed fixpoint diverged — reproduce with \
                     ScheduleFuzz::seeded({seed})"
                );
            }
        }
    }
}

/// Fuzzed runs must still be *simulations*, not noise: the same seed
/// replays the identical timeline bit-for-bit, every per-worker span
/// sequence is chronological, and each worker's compute rounds (its
/// state-version counter) increase monotonically — hostile scheduling
/// may reorder work *across* workers, never time-travel within one.
#[test]
fn fuzzed_timelines_replay_bit_identically_with_monotone_versions() {
    use grape_aap::sim::SpanKind;
    let g = generate::rmat(8, 6, true, 0xC1);
    for seed in aap_testkit::fuzz_seeds(8) {
        let run = || {
            let frags = build_fragments_n(&g, &hash_partition(&g, 5), 5);
            SimEngine::new(frags, SimOpts::default().schedule(ScheduleFuzz::seeded(seed)))
                .expect("valid opts")
                .run(&ConnectedComponents, &())
        };
        let (a, b) = (run(), run());
        assert_eq!(a.out, b.out, "seed {seed}: outputs must replay identically");
        assert_eq!(
            a.stats.makespan.to_bits(),
            b.stats.makespan.to_bits(),
            "seed {seed}: makespan must replay bit-identically"
        );
        for (w, (ta, tb)) in a.timelines.iter().zip(&b.timelines).enumerate() {
            assert_eq!(
                ta.spans.len(),
                tb.spans.len(),
                "seed {seed}: worker {w} span count must replay"
            );
            for (sa, sb) in ta.spans.iter().zip(&tb.spans) {
                assert_eq!(sa.start.to_bits(), sb.start.to_bits(), "seed {seed} worker {w}");
                assert_eq!(sa.end.to_bits(), sb.end.to_bits(), "seed {seed} worker {w}");
            }
            let mut t = f64::NEG_INFINITY;
            let mut round = 0u32;
            for s in &ta.spans {
                assert!(
                    s.start >= t && s.end >= s.start,
                    "seed {seed}: worker {w} timeline is not chronological"
                );
                t = s.end;
                if s.kind == SpanKind::Compute {
                    assert!(
                        s.round >= round,
                        "seed {seed}: worker {w} round went backwards ({} < {round})",
                        s.round
                    );
                    round = s.round;
                }
            }
        }
    }
}

#[test]
fn church_rosser_harness_on_cc() {
    let g = generate::small_world(220, 2, 0.1, 77);
    let report = theory::church_rosser_check(
        &ConnectedComponents,
        &(),
        || {
            let a = hash_partition(&g, 5);
            grape_aap::graph::partition::build_fragments(&g, &a)
        },
        4,
        |a: &Vec<u32>, b: &Vec<u32>| a == b,
    );
    assert!(report.all_equal, "disagreeing modes: {:?}", report.disagreements);
    assert!(report.runs >= 8);
}

#[test]
fn church_rosser_harness_on_sssp() {
    let g = generate::rmat(8, 6, true, 31);
    let report = theory::church_rosser_check(
        &Sssp,
        &3,
        || {
            let a = hash_partition(&g, 6);
            grape_aap::graph::partition::build_fragments(&g, &a)
        },
        4,
        |a: &Vec<u64>, b: &Vec<u64>| a == b,
    );
    assert!(report.all_equal, "disagreeing modes: {:?}", report.disagreements);
}

/// T2 in action: the per-vertex distance history under any schedule is a
/// descending chain.
#[test]
fn sssp_values_contract() {
    struct MinOrder;
    impl theory::ValueOrder for MinOrder {
        type Val = u64;
        fn leq(&self, new: &u64, old: &u64) -> bool {
            new <= old
        }
    }
    // Distances can only improve: replay a run's assembled outputs under
    // increasing staleness bounds and check pointwise descent from the
    // unconverged prefix (epochs of SSP with c=0 vs full run).
    let g = generate::lattice2d(12, 12, 2);
    let frags = grape_aap::graph::partition::build_fragments(&g, &hash_partition(&g, 4));
    let run = Engine::new(frags, EngineOpts::default()).run(&Sssp, &0);
    let final_d = run.out;
    let initial: Vec<u64> =
        (0..g.num_vertices()).map(|v| if v == 0 { 0 } else { u64::MAX }).collect();
    for v in 0..g.num_vertices() {
        let hist = [initial[v], final_d[v]];
        assert_eq!(theory::check_contraction(&MinOrder, &hist), None);
    }
}
